//! Minimal std-only HTTP/1.1 plumbing for `fahana-serve`.
//!
//! The offline build has no hyper/axum (see `vendor/README.md`), so this
//! module hand-rolls exactly the slice of RFC 9112 the daemon needs:
//! request-line + headers + `Content-Length` bodies, percent-decoded paths
//! and query strings, JSON responses, and HTTP/1.1 keep-alive. Bounds are
//! enforced while *reading* (not after), so a hostile peer cannot balloon
//! memory with an oversized header block or body.
//!
//! Parsing is incremental: [`RequestParser`] is a push parser fed whatever
//! bytes happen to be readable, returning a [`Request`] only once the head
//! and declared body are fully buffered. The reactor
//! (`serve/reactor.rs`) drives it from readiness events; the blocking
//! [`read_request`] drives the same parser from timed socket reads, so
//! both paths share one grammar and one set of error messages. Bytes
//! beyond the first complete request stay buffered in the parser, so a
//! pipelining client's next request is parsed (sequentially) instead of
//! dropped.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Reject header blocks larger than this (64 KiB).
const MAX_HEAD_BYTES: usize = 64 * 1024;
/// Default body cap (16 MiB — campaign reports are ~100 KiB); configurable
/// per server via [`RequestLimits::max_body_bytes`].
pub const DEFAULT_MAX_BODY_BYTES: usize = 16 * 1024 * 1024;
/// Default whole-request read deadline; configurable per server via
/// [`RequestLimits::read_timeout`].
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Per-request read bounds, owned by the server and threaded into
/// [`read_request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestLimits {
    /// Total wall-clock budget for reading one request, head *and* body.
    /// This is a deadline, not a per-read idle timeout: a slowloris peer
    /// dribbling one byte per second cannot hold a worker past it.
    pub read_timeout: Duration,
    /// Reject bodies whose `Content-Length` exceeds this (413).
    pub max_body_bytes: usize,
}

impl Default for RequestLimits {
    fn default() -> RequestLimits {
        RequestLimits {
            read_timeout: DEFAULT_READ_TIMEOUT,
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
        }
    }
}

/// Whether an I/O error is one of the two kinds a timed-out socket read
/// reports (platform-dependent).
fn is_timeout(error: &std::io::Error) -> bool {
    matches!(
        error.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Percent-decoded path, query string stripped (`/leaderboard/pi4`).
    pub path: String,
    /// Percent-decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the connection should stay open for the next request:
    /// HTTP/1.1 defaults to `true`, HTTP/1.0 to `false`, and an explicit
    /// `Connection: keep-alive` / `Connection: close` header overrides
    /// either way.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a query parameter.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed; carries the 4xx status it maps onto
/// (400 malformed, 408 timed out mid-request, 413 body too large).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadRequest {
    /// The status the connection loop answers with.
    pub status: u16,
    /// Human-readable cause, served in the error body.
    pub message: String,
}

impl BadRequest {
    pub(crate) fn malformed(message: impl Into<String>) -> BadRequest {
        BadRequest {
            status: 400,
            message: message.into(),
        }
    }

    pub(crate) fn timeout(message: impl Into<String>) -> BadRequest {
        BadRequest {
            status: 408,
            message: message.into(),
        }
    }

    fn too_large(message: impl Into<String>) -> BadRequest {
        BadRequest {
            status: 413,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for BadRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// A fully parsed head, waiting for its declared body bytes to arrive.
#[derive(Debug)]
struct PendingBody {
    method: String,
    path: String,
    query: Vec<(String, String)>,
    keep_alive: bool,
    content_length: usize,
}

/// An incremental (push) HTTP/1.1 request parser: feed it whatever bytes
/// are readable, get a [`Request`] back once a whole one is buffered.
///
/// The parser owns one connection's receive buffer. Bytes past the first
/// complete request are retained, so a pipelining client's next request is
/// picked up by the next [`RequestParser::advance`] call. Bounds are
/// enforced as bytes arrive: an unterminated head is rejected the moment
/// it crosses [`MAX_HEAD_BYTES`], and an oversized declared body is
/// rejected from the headers alone (413), before any body byte is
/// buffered past the cap decision.
#[derive(Debug)]
pub struct RequestParser {
    max_body_bytes: usize,
    buffer: Vec<u8>,
    /// Resume point for the head-terminator scan, so repeated feeds of a
    /// large head stay O(n) overall instead of rescanning from zero.
    scan_from: usize,
    pending: Option<PendingBody>,
}

impl RequestParser {
    /// A parser for one connection, enforcing `max_body_bytes` (413).
    pub fn new(max_body_bytes: usize) -> RequestParser {
        RequestParser {
            max_body_bytes,
            buffer: Vec::new(),
            scan_from: 0,
            pending: None,
        }
    }

    /// Buffers `bytes` and attempts to complete a request (see
    /// [`RequestParser::advance`]).
    ///
    /// # Errors
    ///
    /// As [`RequestParser::advance`].
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Option<Request>, BadRequest> {
        self.buffer.extend_from_slice(bytes);
        self.advance()
    }

    /// Attempts to complete one request from the bytes already buffered.
    /// `Ok(None)` means more bytes are needed. Call again after a request
    /// is consumed to pick up a pipelined successor.
    ///
    /// # Errors
    ///
    /// [`BadRequest`] on malformed request lines (400), oversized heads
    /// (400), or oversized declared bodies (413). Errors are sticky in
    /// practice: the connection is answered and closed, never re-fed.
    pub fn advance(&mut self) -> Result<Option<Request>, BadRequest> {
        if self.pending.is_none() {
            let Some(head_end) = self.find_head_end() else {
                if self.buffer.len() >= MAX_HEAD_BYTES {
                    return Err(BadRequest::malformed(format!(
                        "header block truncated or larger than {MAX_HEAD_BYTES} bytes"
                    )));
                }
                return Ok(None);
            };
            if head_end > MAX_HEAD_BYTES {
                return Err(BadRequest::malformed(format!(
                    "header block truncated or larger than {MAX_HEAD_BYTES} bytes"
                )));
            }
            let head = parse_head(&self.buffer[..head_end], self.max_body_bytes)?;
            self.buffer.drain(..head_end);
            self.scan_from = 0;
            self.pending = Some(head);
        }
        let Some(head) = self.pending.take() else {
            return Ok(None);
        };
        if self.buffer.len() < head.content_length {
            self.pending = Some(head);
            return Ok(None);
        }
        let body: Vec<u8> = self.buffer.drain(..head.content_length).collect();
        Ok(Some(Request {
            method: head.method,
            path: head.path,
            query: head.query,
            body,
            keep_alive: head.keep_alive,
        }))
    }

    /// Whether nothing of a next request has arrived — the state in which
    /// EOF or an expired idle deadline is a quiet close, not an error.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty() && self.pending.is_none()
    }

    /// Which part of the request the parser is waiting on — used to word
    /// the 408 a deadline expiry answers with.
    pub fn phase(&self) -> &'static str {
        if self.pending.is_some() {
            "body"
        } else if self.buffer.contains(&b'\n') {
            "header block"
        } else {
            "request line"
        }
    }

    /// The verdict on end-of-stream: clean between requests, or a 400 for
    /// a request truncated mid-head or mid-body.
    ///
    /// # Errors
    ///
    /// [`BadRequest`] when the peer hung up with a partial request
    /// buffered.
    pub fn on_eof(&self) -> Result<(), BadRequest> {
        if self.pending.is_some() {
            return Err(BadRequest::malformed(
                "body shorter than Content-Length: peer closed the connection early",
            ));
        }
        if !self.buffer.is_empty() {
            return Err(BadRequest::malformed(format!(
                "header block truncated or larger than {MAX_HEAD_BYTES} bytes"
            )));
        }
        Ok(())
    }

    /// Finds the end of the head (the byte after the blank line),
    /// accepting both `\r\n\r\n` and bare-LF `\n\n` terminators (and the
    /// mixed forms in between, matching what line-by-line parsing with
    /// trailing-`\r` trimming accepted).
    fn find_head_end(&mut self) -> Option<usize> {
        let buffer = &self.buffer;
        let mut index = self.scan_from;
        while index < buffer.len() {
            if buffer[index] == b'\n' {
                match buffer.get(index + 1) {
                    Some(b'\n') => return Some(index + 2),
                    Some(b'\r') => match buffer.get(index + 2) {
                        Some(b'\n') => return Some(index + 3),
                        Some(_) => {}
                        None => {
                            // "…\n\r" at the end: this '\n' may yet start
                            // the terminator — re-examine it next feed
                            self.scan_from = index;
                            return None;
                        }
                    },
                    Some(_) => {}
                    None => {
                        self.scan_from = index;
                        return None;
                    }
                }
            }
            index += 1;
        }
        self.scan_from = buffer.len();
        None
    }
}

/// Parses a complete head (request line + headers + blank line) into a
/// [`PendingBody`], enforcing the body cap from `Content-Length` alone.
fn parse_head(head: &[u8], max_body_bytes: usize) -> Result<PendingBody, BadRequest> {
    let text = std::str::from_utf8(head)
        .map_err(|_| BadRequest::malformed("request head is not valid UTF-8"))?;
    let mut lines = text.split('\n').map(|line| line.trim_end_matches('\r'));
    let request_line = lines.next().unwrap_or_default().to_string();

    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| BadRequest::malformed("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| {
            BadRequest::malformed(format!("request line `{request_line}` has no target"))
        })?
        .to_string();
    let mut keep_alive = match parts.next() {
        // keep-alive is the HTTP/1.1 default; 1.0 defaults to close
        Some(version) if version.starts_with("HTTP/1.") => version != "HTTP/1.0",
        other => {
            return Err(BadRequest::malformed(format!(
                "unsupported protocol `{}`",
                other.unwrap_or("<missing>")
            )))
        }
    };

    // headers: only Content-Length and Connection matter to this server
    let mut content_length: Option<usize> = None;
    for header in lines {
        if header.is_empty() {
            break; // the blank line ending the head
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                let parsed: usize = value.trim().parse().map_err(|_| {
                    BadRequest::malformed(format!("bad Content-Length `{}`", value.trim()))
                })?;
                // duplicate Content-Length headers that disagree are the
                // classic request-smuggling vector (two parsers, two body
                // framings): reject instead of letting the last one win;
                // identical duplicates are harmless and stay accepted
                if content_length.is_some_and(|existing| existing != parsed) {
                    return Err(BadRequest::malformed(format!(
                        "conflicting Content-Length headers ({} then {parsed})",
                        content_length.unwrap_or_default()
                    )));
                }
                content_length = Some(parsed);
            } else if name.eq_ignore_ascii_case("connection") {
                // token list, case-insensitive (`keep-alive`, `close`)
                for token in value.split(',') {
                    let token = token.trim();
                    if token.eq_ignore_ascii_case("close") {
                        keep_alive = false;
                    } else if token.eq_ignore_ascii_case("keep-alive") {
                        keep_alive = true;
                    }
                }
            }
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > max_body_bytes {
        return Err(BadRequest::too_large(format!(
            "body of {content_length} bytes exceeds the {} byte limit",
            max_body_bytes
        )));
    }
    let (path, query) = split_target(&target)?;
    Ok(PendingBody {
        method,
        path,
        query,
        keep_alive,
        content_length,
    })
}

/// Reads one request from the stream, blocking up to the `limits`
/// deadline. This is the blocking driver over [`RequestParser`] — used by
/// the non-unix fallback connection loop (the reactor drives the same
/// parser from readiness events on unix).
///
/// `Ok(None)` means the connection ended cleanly before the first byte of
/// a request — the peer closed a kept-alive connection, or let it idle
/// past the read timeout. That is the normal end of connection reuse, not
/// an error, so no 4xx should be written for it.
///
/// # Errors
///
/// [`BadRequest`] on malformed request lines (400), a request that dribbles
/// in past the `limits` deadline (408), oversized heads (400) or bodies
/// (413), or an underful body — peer hung up early (400).
pub fn read_request(
    stream: &mut TcpStream,
    limits: &RequestLimits,
) -> Result<Option<Request>, BadRequest> {
    // one absolute deadline covers the whole request (head and body): a
    // slowloris peer feeding a byte at a time runs out of clock, not just
    // out of per-read patience
    let deadline = Instant::now() + limits.read_timeout;
    let mut parser = RequestParser::new(limits.max_body_bytes);
    let mut chunk = [0u8; 8192];
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            // an idle keep-alive connection hitting the deadline with no
            // request bytes on the wire is a quiet close, not a bad
            // request — a *partial* request at the deadline is a
            // slowloris peer, answered 408
            return if parser.is_empty() {
                Ok(None)
            } else {
                Err(BadRequest::timeout(format!(
                    "{} still incomplete at the read deadline",
                    parser.phase()
                )))
            };
        }
        stream.set_read_timeout(Some(remaining)).ok();
        match stream.read(&mut chunk) {
            Ok(0) => return parser.on_eof().map(|()| None),
            Ok(n) => {
                if let Some(request) = parser.feed(&chunk[..n])? {
                    return Ok(Some(request));
                }
            }
            // the socket timeout fired (or fired spuriously early): loop —
            // the deadline check at the top decides quiet close vs 408
            Err(e) if is_timeout(&e) => continue,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(BadRequest::malformed(format!("cannot read request: {e}"))),
        }
    }
}

/// Splits a request target into its decoded path and query parameters.
fn split_target(target: &str) -> Result<(String, Vec<(String, String)>), BadRequest> {
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    if !raw_path.starts_with('/') {
        return Err(BadRequest::malformed(format!(
            "target `{target}` is not a path"
        )));
    }
    let path = percent_decode(raw_path)?;
    let mut query = Vec::new();
    if let Some(raw_query) = raw_query {
        for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
            let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
            query.push((percent_decode(key)?, percent_decode(value)?));
        }
    }
    Ok((path, query))
}

/// Decodes `%XX` escapes and `+`-as-space.
fn percent_decode(text: &str) -> Result<String, BadRequest> {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut index = 0;
    while index < bytes.len() {
        match bytes[index] {
            b'+' => {
                out.push(b' ');
                index += 1;
            }
            b'%' => {
                let hex = bytes
                    .get(index + 1..index + 3)
                    .and_then(|pair| std::str::from_utf8(pair).ok())
                    .and_then(|pair| u8::from_str_radix(pair, 16).ok())
                    .ok_or_else(|| {
                        BadRequest::malformed(format!("bad percent escape in `{text}`"))
                    })?;
                out.push(hex);
                index += 3;
            }
            byte => {
                out.push(byte);
                index += 1;
            }
        }
    }
    String::from_utf8(out)
        .map_err(|_| BadRequest::malformed(format!("`{text}` decodes to invalid UTF-8")))
}

/// A response ready to be serialized onto the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The body.
    pub body: String,
    /// `Content-Type` the body is served as (JSON everywhere except the
    /// Prometheus `/metrics` rendering).
    pub content_type: &'static str,
    /// When set, emitted as an `X-Fahana-Generation` header: the store
    /// view generation this response's bytes were rendered from. Read
    /// endpoints set it so clients (and `tests/serve_load.rs`) can pin
    /// a body to the exact store state it reflects.
    pub generation: Option<u64>,
    /// When set, emitted as a `Retry-After` header (seconds) — attached to
    /// the 503 a saturated server answers at the accept gate.
    pub retry_after: Option<u64>,
}

impl Response {
    /// A 200 with a JSON body.
    pub fn ok(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            body: body.into(),
            content_type: "application/json",
            generation: None,
            retry_after: None,
        }
    }

    /// A 200 with a plain-text body (the Prometheus exposition format is
    /// served as `text/plain; version=0.0.4`).
    pub fn text(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            body: body.into(),
            content_type: "text/plain; version=0.0.4",
            generation: None,
            retry_after: None,
        }
    }

    /// An error response with an `{"error": ...}` JSON body.
    pub fn error(status: u16, message: impl Into<String>) -> Response {
        let body = crate::report::Json::Obj(vec![(
            "error".into(),
            crate::report::Json::str(message.into()),
        )])
        .render();
        Response {
            status,
            body,
            content_type: "application/json",
            generation: None,
            retry_after: None,
        }
    }

    /// Tags the response with the store generation its bytes were
    /// rendered from (`X-Fahana-Generation`).
    pub fn with_generation(mut self, generation: u64) -> Response {
        self.generation = Some(generation);
        self
    }

    /// Attaches a `Retry-After` header (seconds).
    pub fn with_retry_after(mut self, seconds: u64) -> Response {
        self.retry_after = Some(seconds);
        self
    }

    /// Serializes the response (status line, headers, body) into the exact
    /// bytes [`Response::write_to`] puts on the wire — the reactor's write
    /// path buffers these and drains them as the socket accepts them.
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        if let Some(generation) = self.generation {
            head.push_str(&format!("X-Fahana-Generation: {generation}\r\n"));
        }
        if let Some(seconds) = self.retry_after {
            head.push_str(&format!("Retry-After: {seconds}\r\n"));
        }
        head.push_str("\r\n");
        let mut bytes = head.into_bytes();
        bytes.extend_from_slice(self.body.as_bytes());
        bytes
    }

    /// Writes the response (status line, headers, body) to the stream,
    /// advertising whether the server will keep the connection open for
    /// another request. Returns the total bytes written (head + body).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error (peer gone, etc.).
    pub fn write_to(&self, stream: &mut TcpStream, keep_alive: bool) -> std::io::Result<usize> {
        let bytes = self.to_bytes(keep_alive);
        stream.write_all(&bytes)?;
        stream.flush()?;
        Ok(bytes.len())
    }
}

/// One client-side HTTP exchange over an existing connection: sends the
/// request (with `Connection: keep-alive`, so the same stream can carry
/// the next exchange) and reads the `Content-Length`-framed response.
/// Returns `(status, body)`.
///
/// This is the minimal client behind the `fahana-shard` coordinator's
/// `--ingest-url` publishing (and the keep-alive tests): sequential
/// request/response pairs on one connection, no pipelining.
///
/// # Errors
///
/// The underlying I/O error, or `InvalidData` when the peer's response is
/// not parseable HTTP.
pub fn client_roundtrip(
    stream: &mut TcpStream,
    method: &str,
    target: &str,
    body: &[u8],
) -> std::io::Result<(u16, String)> {
    client_exchange(stream, method, target, body).map(|response| (response.status, response.body))
}

/// A fully parsed client-side response: status, every header, the body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// All response headers, in wire order (names as sent).
    pub headers: Vec<(String, String)>,
    /// The `Content-Length`-framed body.
    pub body: String,
}

impl ClientResponse {
    /// First header value matching `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(header, _)| header.eq_ignore_ascii_case(name))
            .map(|(_, value)| value.as_str())
    }

    /// The `X-Fahana-Generation` header, parsed — the store generation the
    /// response bytes were rendered from.
    pub fn generation(&self) -> Option<u64> {
        self.header("x-fahana-generation")?.trim().parse().ok()
    }
}

/// [`client_roundtrip`], but returning the response headers as well — the
/// load generator and the concurrency tests need `X-Fahana-Generation` to
/// pin a body to the store state that produced it.
///
/// # Errors
///
/// As [`client_roundtrip`].
pub fn client_exchange(
    stream: &mut TcpStream,
    method: &str,
    target: &str,
    body: &[u8],
) -> std::io::Result<ClientResponse> {
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: fahana\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let bad = |message: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, message);
    // read the response head byte-wise up to the blank line (heads are
    // tiny; byte-wise reads keep the body boundary exact without any
    // reader-side buffering to hand back)
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(bad("response head too large"));
        }
        stream.read_exact(&mut byte)?;
        head.push(byte[0]);
    }
    let head = String::from_utf8(head).map_err(|_| bad("response head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|line| line.split(' ').nth(1))
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().map_err(|_| bad("malformed Content-Length"))?;
            }
            headers.push((name.to_string(), value.to_string()));
        }
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| bad("response body is not UTF-8"))?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

/// Reason phrase for the status codes this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_target_decodes_path_and_query() {
        let (path, query) =
            split_target("/leaderboard/raspberry_pi_4?top=3&reward=fair%20one").unwrap();
        assert_eq!(path, "/leaderboard/raspberry_pi_4");
        assert_eq!(
            query,
            vec![
                ("top".to_string(), "3".to_string()),
                ("reward".to_string(), "fair one".to_string()),
            ]
        );
        // '+' decodes to space, bare keys get empty values
        let (_, query) = split_target("/query?reward=a+b&flag").unwrap();
        assert_eq!(
            query,
            vec![
                ("reward".to_string(), "a b".to_string()),
                ("flag".to_string(), String::new()),
            ]
        );
    }

    #[test]
    fn split_target_rejects_garbage() {
        assert!(split_target("query").is_err());
        assert!(split_target("/q?x=%zz").is_err());
        assert!(split_target("/%ff%fe").is_err(), "invalid UTF-8 rejected");
    }

    #[test]
    fn responses_have_correct_framing() {
        let response = Response::error(404, "no such route");
        assert_eq!(response.status, 404);
        assert_eq!(response.body, r#"{"error":"no such route"}"#);
        assert_eq!(status_text(409), "Conflict");
    }

    #[test]
    fn parser_completes_a_request_fed_one_byte_at_a_time() {
        let raw = b"POST /ingest?id=x HTTP/1.1\r\nHost: f\r\nContent-Length: 4\r\n\r\nbody";
        let mut parser = RequestParser::new(1024);
        let mut request = None;
        for (index, byte) in raw.iter().enumerate() {
            assert!(parser.is_empty() == (index == 0));
            if let Some(done) = parser.feed(&[*byte]).unwrap() {
                assert_eq!(index, raw.len() - 1, "complete only at the last byte");
                request = Some(done);
            }
        }
        let request = request.expect("request completes");
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/ingest");
        assert_eq!(request.param("id"), Some("x"));
        assert_eq!(request.body, b"body");
        assert!(request.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(parser.is_empty(), "nothing retained past the request");
    }

    #[test]
    fn parser_retains_pipelined_bytes_for_the_next_advance() {
        let mut parser = RequestParser::new(1024);
        let two = b"GET /healthz HTTP/1.1\r\n\r\nGET /catalog HTTP/1.0\n\n";
        let first = parser.feed(two).unwrap().expect("first request parses");
        assert_eq!(first.path, "/healthz");
        assert!(!parser.is_empty(), "second request still buffered");
        let second = parser.advance().unwrap().expect("second request parses");
        assert_eq!(second.path, "/catalog");
        assert!(!second.keep_alive, "HTTP/1.0 defaults to close");
        assert!(parser.is_empty());
        assert!(parser.on_eof().is_ok(), "clean EOF between requests");
    }

    #[test]
    fn parser_rejects_what_the_blocking_reader_rejected() {
        // conflicting Content-Length duplicates: the smuggling vector
        let mut parser = RequestParser::new(1024);
        let err = parser
            .feed(b"POST /i HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\n")
            .unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("conflicting Content-Length"), "{err}");

        // an oversized declared body is rejected from the headers alone
        let mut parser = RequestParser::new(16);
        let err = parser
            .feed(b"POST /i HTTP/1.1\r\nContent-Length: 17\r\n\r\n")
            .unwrap_err();
        assert_eq!(err.status, 413);

        // a head that never terminates is cut off at the cap
        let mut parser = RequestParser::new(1024);
        let mut result = parser.feed(b"GET / HTTP/1.1\r\n");
        while let Ok(None) = result {
            result = parser.feed(&[b'a'; 4096]);
        }
        let err = result.unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("truncated or larger"), "{err}");

        // EOF mid-head and mid-body are 400s, not quiet closes
        let mut parser = RequestParser::new(1024);
        parser.feed(b"GET /que").unwrap();
        assert_eq!(parser.phase(), "request line");
        assert_eq!(parser.on_eof().unwrap_err().status, 400);
        let mut parser = RequestParser::new(1024);
        parser
            .feed(b"POST /i HTTP/1.1\r\nContent-Length: 9\r\n\r\nhalf")
            .unwrap();
        assert_eq!(parser.phase(), "body");
        assert!(parser.on_eof().unwrap_err().message.contains("shorter"));
    }
}
