//! Minimal std-only HTTP/1.1 plumbing for `fahana-serve`.
//!
//! The offline build has no hyper/axum (see `vendor/README.md`), so this
//! module hand-rolls exactly the slice of RFC 9112 the daemon needs:
//! request-line + headers + `Content-Length` bodies, percent-decoded paths
//! and query strings, JSON responses, and HTTP/1.1 keep-alive (sequential
//! reuse — a client that waits for each response before sending the next
//! request, like the `fahana-shard` coordinator's ingest bursts; pipelined
//! requests are not supported and may be dropped). Bounds are enforced
//! while *reading* (not after), so a hostile peer cannot balloon memory
//! with an oversized header block or body.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Reject header blocks larger than this (64 KiB).
const MAX_HEAD_BYTES: usize = 64 * 1024;
/// Default body cap (16 MiB — campaign reports are ~100 KiB); configurable
/// per server via [`RequestLimits::max_body_bytes`].
pub const DEFAULT_MAX_BODY_BYTES: usize = 16 * 1024 * 1024;
/// Default whole-request read deadline; configurable per server via
/// [`RequestLimits::read_timeout`].
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Per-request read bounds, owned by the server and threaded into
/// [`read_request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestLimits {
    /// Total wall-clock budget for reading one request, head *and* body.
    /// This is a deadline, not a per-read idle timeout: a slowloris peer
    /// dribbling one byte per second cannot hold a worker past it.
    pub read_timeout: Duration,
    /// Reject bodies whose `Content-Length` exceeds this (413).
    pub max_body_bytes: usize,
}

impl Default for RequestLimits {
    fn default() -> RequestLimits {
        RequestLimits {
            read_timeout: DEFAULT_READ_TIMEOUT,
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
        }
    }
}

/// A [`Read`] adapter enforcing an absolute deadline over a `TcpStream`:
/// before every read the socket timeout is re-armed to the time remaining,
/// so the *total* time a peer can spend dribbling a request in is bounded,
/// not just the gap between bytes.
struct DeadlineStream<'a> {
    stream: &'a mut TcpStream,
    deadline: Instant,
}

impl Read for DeadlineStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let remaining = self.deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "request read deadline expired",
            ));
        }
        self.stream.set_read_timeout(Some(remaining)).ok();
        self.stream.read(buf)
    }
}

/// Whether an I/O error is one of the two kinds a timed-out socket read
/// reports (platform-dependent).
fn is_timeout(error: &std::io::Error) -> bool {
    matches!(
        error.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Percent-decoded path, query string stripped (`/leaderboard/pi4`).
    pub path: String,
    /// Percent-decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the connection should stay open for the next request:
    /// HTTP/1.1 defaults to `true`, HTTP/1.0 to `false`, and an explicit
    /// `Connection: keep-alive` / `Connection: close` header overrides
    /// either way.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a query parameter.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed; carries the 4xx status it maps onto
/// (400 malformed, 408 timed out mid-request, 413 body too large).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadRequest {
    /// The status the connection loop answers with.
    pub status: u16,
    /// Human-readable cause, served in the error body.
    pub message: String,
}

impl BadRequest {
    fn malformed(message: impl Into<String>) -> BadRequest {
        BadRequest {
            status: 400,
            message: message.into(),
        }
    }

    fn timeout(message: impl Into<String>) -> BadRequest {
        BadRequest {
            status: 408,
            message: message.into(),
        }
    }

    fn too_large(message: impl Into<String>) -> BadRequest {
        BadRequest {
            status: 413,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for BadRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Reads one request from the stream.
///
/// `Ok(None)` means the connection ended cleanly before the first byte of
/// a request — the peer closed a kept-alive connection, or let it idle
/// past the read timeout. That is the normal end of connection reuse, not
/// an error, so no 4xx should be written for it.
///
/// # Errors
///
/// [`BadRequest`] on malformed request lines (400), a request that dribbles
/// in past the `limits` deadline (408), oversized heads (400) or bodies
/// (413), or an underful body — peer hung up early (400).
pub fn read_request(
    stream: &mut TcpStream,
    limits: &RequestLimits,
) -> Result<Option<Request>, BadRequest> {
    // one absolute deadline covers the whole request (head and body): a
    // slowloris peer feeding a byte at a time runs out of clock, not just
    // out of per-read patience
    let mut limited = DeadlineStream {
        stream,
        deadline: Instant::now() + limits.read_timeout,
    };
    // the whole head is read through a `take`, so a peer streaming an
    // endless request line (or header block) hits the cap mid-read and
    // can never make `read_line` buffer more than MAX_HEAD_BYTES
    let mut reader = BufReader::new((&mut limited).take(MAX_HEAD_BYTES as u64));
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Ok(None), // clean EOF between requests
        Ok(_) => {}
        // an idle keep-alive connection hitting the read timeout with no
        // request bytes on the wire is a quiet close, not a bad request —
        // but a *partial* request line at the deadline is a slowloris
        // peer, answered 408
        Err(e) if line.is_empty() && is_timeout(&e) => return Ok(None),
        Err(e) if is_timeout(&e) => {
            return Err(BadRequest::timeout(
                "request line still incomplete at the read deadline",
            ))
        }
        Err(e) => {
            return Err(BadRequest::malformed(format!(
                "cannot read request line: {e}"
            )))
        }
    }
    let request_line = line.trim_end_matches(['\r', '\n']).to_string();

    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| BadRequest::malformed("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| {
            BadRequest::malformed(format!("request line `{request_line}` has no target"))
        })?
        .to_string();
    let mut keep_alive = match parts.next() {
        // keep-alive is the HTTP/1.1 default; 1.0 defaults to close
        Some(version) if version.starts_with("HTTP/1.") => version != "HTTP/1.0",
        other => {
            return Err(BadRequest::malformed(format!(
                "unsupported protocol `{}`",
                other.unwrap_or("<missing>")
            )))
        }
    };

    // headers: only Content-Length and Connection matter to this server
    let mut content_length: Option<usize> = None;
    let mut terminated = false;
    loop {
        let mut header = String::new();
        let read = reader.read_line(&mut header).map_err(|e| {
            if is_timeout(&e) {
                BadRequest::timeout("header block still incomplete at the read deadline")
            } else {
                BadRequest::malformed(format!("cannot read header: {e}"))
            }
        })?;
        if read == 0 {
            break; // EOF or head cap exhausted without a blank line
        }
        let header = header.trim_end_matches(['\r', '\n']);
        if header.is_empty() {
            terminated = true;
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                let parsed: usize = value.trim().parse().map_err(|_| {
                    BadRequest::malformed(format!("bad Content-Length `{}`", value.trim()))
                })?;
                // duplicate Content-Length headers that disagree are the
                // classic request-smuggling vector (two parsers, two body
                // framings): reject instead of letting the last one win;
                // identical duplicates are harmless and stay accepted
                if content_length.is_some_and(|existing| existing != parsed) {
                    return Err(BadRequest::malformed(format!(
                        "conflicting Content-Length headers ({} then {parsed})",
                        content_length.unwrap_or_default()
                    )));
                }
                content_length = Some(parsed);
            } else if name.eq_ignore_ascii_case("connection") {
                // token list, case-insensitive (`keep-alive`, `close`)
                for token in value.split(',') {
                    let token = token.trim();
                    if token.eq_ignore_ascii_case("close") {
                        keep_alive = false;
                    } else if token.eq_ignore_ascii_case("keep-alive") {
                        keep_alive = true;
                    }
                }
            }
        }
    }
    if !terminated {
        return Err(BadRequest::malformed(format!(
            "header block truncated or larger than {MAX_HEAD_BYTES} bytes"
        )));
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > limits.max_body_bytes {
        return Err(BadRequest::too_large(format!(
            "body of {content_length} bytes exceeds the {} byte limit",
            limits.max_body_bytes
        )));
    }

    // body: drain what the head reader over-buffered, then go back to the
    // deadline-bounded stream for the rest (the head cap must not apply to
    // the body, but the read deadline still does)
    let mut body = vec![0u8; content_length];
    let from_buffer = {
        let buffered = reader.buffer();
        let n = buffered.len().min(content_length);
        body[..n].copy_from_slice(&buffered[..n]);
        n
    };
    reader.consume(from_buffer);
    drop(reader);
    if from_buffer < content_length {
        limited.read_exact(&mut body[from_buffer..]).map_err(|e| {
            if is_timeout(&e) {
                BadRequest::timeout("body still incomplete at the read deadline")
            } else {
                BadRequest::malformed(format!("body shorter than Content-Length: {e}"))
            }
        })?;
    }

    let (path, query) = split_target(&target)?;
    Ok(Some(Request {
        method,
        path,
        query,
        body,
        keep_alive,
    }))
}

/// Splits a request target into its decoded path and query parameters.
fn split_target(target: &str) -> Result<(String, Vec<(String, String)>), BadRequest> {
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    if !raw_path.starts_with('/') {
        return Err(BadRequest::malformed(format!(
            "target `{target}` is not a path"
        )));
    }
    let path = percent_decode(raw_path)?;
    let mut query = Vec::new();
    if let Some(raw_query) = raw_query {
        for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
            let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
            query.push((percent_decode(key)?, percent_decode(value)?));
        }
    }
    Ok((path, query))
}

/// Decodes `%XX` escapes and `+`-as-space.
fn percent_decode(text: &str) -> Result<String, BadRequest> {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut index = 0;
    while index < bytes.len() {
        match bytes[index] {
            b'+' => {
                out.push(b' ');
                index += 1;
            }
            b'%' => {
                let hex = bytes
                    .get(index + 1..index + 3)
                    .and_then(|pair| std::str::from_utf8(pair).ok())
                    .and_then(|pair| u8::from_str_radix(pair, 16).ok())
                    .ok_or_else(|| {
                        BadRequest::malformed(format!("bad percent escape in `{text}`"))
                    })?;
                out.push(hex);
                index += 3;
            }
            byte => {
                out.push(byte);
                index += 1;
            }
        }
    }
    String::from_utf8(out)
        .map_err(|_| BadRequest::malformed(format!("`{text}` decodes to invalid UTF-8")))
}

/// A response ready to be serialized onto the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The body.
    pub body: String,
    /// `Content-Type` the body is served as (JSON everywhere except the
    /// Prometheus `/metrics` rendering).
    pub content_type: &'static str,
    /// When set, emitted as an `X-Fahana-Generation` header: the store
    /// view generation this response's bytes were rendered from. Read
    /// endpoints set it so clients (and `tests/serve_load.rs`) can pin
    /// a body to the exact store state it reflects.
    pub generation: Option<u64>,
    /// When set, emitted as a `Retry-After` header (seconds) — attached to
    /// the 503 a saturated server answers at the accept gate.
    pub retry_after: Option<u64>,
}

impl Response {
    /// A 200 with a JSON body.
    pub fn ok(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            body: body.into(),
            content_type: "application/json",
            generation: None,
            retry_after: None,
        }
    }

    /// A 200 with a plain-text body (the Prometheus exposition format is
    /// served as `text/plain; version=0.0.4`).
    pub fn text(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            body: body.into(),
            content_type: "text/plain; version=0.0.4",
            generation: None,
            retry_after: None,
        }
    }

    /// An error response with an `{"error": ...}` JSON body.
    pub fn error(status: u16, message: impl Into<String>) -> Response {
        let body = crate::report::Json::Obj(vec![(
            "error".into(),
            crate::report::Json::str(message.into()),
        )])
        .render();
        Response {
            status,
            body,
            content_type: "application/json",
            generation: None,
            retry_after: None,
        }
    }

    /// Tags the response with the store generation its bytes were
    /// rendered from (`X-Fahana-Generation`).
    pub fn with_generation(mut self, generation: u64) -> Response {
        self.generation = Some(generation);
        self
    }

    /// Attaches a `Retry-After` header (seconds).
    pub fn with_retry_after(mut self, seconds: u64) -> Response {
        self.retry_after = Some(seconds);
        self
    }

    /// Writes the response (status line, headers, body) to the stream,
    /// advertising whether the server will keep the connection open for
    /// another request. Returns the total bytes written (head + body).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error (peer gone, etc.).
    pub fn write_to(&self, stream: &mut TcpStream, keep_alive: bool) -> std::io::Result<usize> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        if let Some(generation) = self.generation {
            head.push_str(&format!("X-Fahana-Generation: {generation}\r\n"));
        }
        if let Some(seconds) = self.retry_after {
            head.push_str(&format!("Retry-After: {seconds}\r\n"));
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()?;
        Ok(head.len() + self.body.len())
    }
}

/// One client-side HTTP exchange over an existing connection: sends the
/// request (with `Connection: keep-alive`, so the same stream can carry
/// the next exchange) and reads the `Content-Length`-framed response.
/// Returns `(status, body)`.
///
/// This is the minimal client behind the `fahana-shard` coordinator's
/// `--ingest-url` publishing (and the keep-alive tests): sequential
/// request/response pairs on one connection, no pipelining.
///
/// # Errors
///
/// The underlying I/O error, or `InvalidData` when the peer's response is
/// not parseable HTTP.
pub fn client_roundtrip(
    stream: &mut TcpStream,
    method: &str,
    target: &str,
    body: &[u8],
) -> std::io::Result<(u16, String)> {
    client_exchange(stream, method, target, body).map(|response| (response.status, response.body))
}

/// A fully parsed client-side response: status, every header, the body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// All response headers, in wire order (names as sent).
    pub headers: Vec<(String, String)>,
    /// The `Content-Length`-framed body.
    pub body: String,
}

impl ClientResponse {
    /// First header value matching `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(header, _)| header.eq_ignore_ascii_case(name))
            .map(|(_, value)| value.as_str())
    }

    /// The `X-Fahana-Generation` header, parsed — the store generation the
    /// response bytes were rendered from.
    pub fn generation(&self) -> Option<u64> {
        self.header("x-fahana-generation")?.trim().parse().ok()
    }
}

/// [`client_roundtrip`], but returning the response headers as well — the
/// load generator and the concurrency tests need `X-Fahana-Generation` to
/// pin a body to the store state that produced it.
///
/// # Errors
///
/// As [`client_roundtrip`].
pub fn client_exchange(
    stream: &mut TcpStream,
    method: &str,
    target: &str,
    body: &[u8],
) -> std::io::Result<ClientResponse> {
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: fahana\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let bad = |message: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, message);
    // read the response head byte-wise up to the blank line (heads are
    // tiny; byte-wise reads keep the body boundary exact without any
    // reader-side buffering to hand back)
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(bad("response head too large"));
        }
        stream.read_exact(&mut byte)?;
        head.push(byte[0]);
    }
    let head = String::from_utf8(head).map_err(|_| bad("response head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|line| line.split(' ').nth(1))
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().map_err(|_| bad("malformed Content-Length"))?;
            }
            headers.push((name.to_string(), value.to_string()));
        }
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| bad("response body is not UTF-8"))?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

/// Reason phrase for the status codes this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_target_decodes_path_and_query() {
        let (path, query) =
            split_target("/leaderboard/raspberry_pi_4?top=3&reward=fair%20one").unwrap();
        assert_eq!(path, "/leaderboard/raspberry_pi_4");
        assert_eq!(
            query,
            vec![
                ("top".to_string(), "3".to_string()),
                ("reward".to_string(), "fair one".to_string()),
            ]
        );
        // '+' decodes to space, bare keys get empty values
        let (_, query) = split_target("/query?reward=a+b&flag").unwrap();
        assert_eq!(
            query,
            vec![
                ("reward".to_string(), "a b".to_string()),
                ("flag".to_string(), String::new()),
            ]
        );
    }

    #[test]
    fn split_target_rejects_garbage() {
        assert!(split_target("query").is_err());
        assert!(split_target("/q?x=%zz").is_err());
        assert!(split_target("/%ff%fe").is_err(), "invalid UTF-8 rejected");
    }

    #[test]
    fn responses_have_correct_framing() {
        let response = Response::error(404, "no such route");
        assert_eq!(response.status, 404);
        assert_eq!(response.body, r#"{"error":"no such route"}"#);
        assert_eq!(status_text(409), "Conflict");
    }
}
