//! Request routing: maps a parsed [`Request`] onto the store view.
//!
//! Every endpoint answers JSON. `GET /query` goes through the exact same
//! [`answer_query`] core (and the same [`StoreQuery::set`] filter parsing)
//! as `fahana-query --json`, so the daemon's answers are byte-identical to
//! the CLI's — pinned by `tests/serve_http.rs`.

use edgehw::DeviceKind;

use crate::report::Json;
use crate::serve::http::{Request, Response};
use crate::serve::obs::ServeTelemetry;
use crate::serve::view::StoreView;
use crate::store::{answer_query, catalog_json, leaderboard, StoreError, StoreQuery};

/// Routes one request to its handler. `obs` answers the observability
/// endpoints (`/metrics`, `/statusz`) and is otherwise untouched — request
/// accounting happens in the connection loop, not here.
pub fn route(request: &Request, view: &StoreView, obs: &ServeTelemetry) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => healthz(view),
        ("GET", "/query") => query(request, view),
        ("GET", "/campaigns") => campaigns(view),
        ("GET", "/catalog") => catalog(view),
        ("GET", "/metrics") => Response::text(obs.render_metrics(view)),
        ("GET", "/statusz") => Response::ok(obs.statusz_json(view).render()),
        ("GET", path) if path.starts_with("/leaderboard/") => {
            device_leaderboard(request, view, &path["/leaderboard/".len()..])
        }
        ("POST", "/ingest") => ingest(request, view),
        (
            _,
            "/healthz" | "/query" | "/campaigns" | "/catalog" | "/ingest" | "/metrics" | "/statusz",
        ) => Response::error(405, format!("method {} not allowed here", request.method)),
        (_, path) if path.starts_with("/leaderboard/") => {
            Response::error(405, format!("method {} not allowed here", request.method))
        }
        _ => Response::error(404, format!("no route for {}", request.path)),
    }
}

fn healthz(view: &StoreView) -> Response {
    let campaigns = view.campaigns();
    Response::ok(
        Json::Obj(vec![
            ("status".into(), Json::str("ok")),
            ("campaigns".into(), Json::Int(campaigns.len() as i64)),
            (
                "scenarios".into(),
                Json::Int(
                    campaigns
                        .iter()
                        .map(|c| c.report.scenarios.len() as i64)
                        .sum(),
                ),
            ),
        ])
        .render(),
    )
}

fn query(request: &Request, view: &StoreView) -> Response {
    let mut store_query = StoreQuery::default();
    for (key, value) in &request.query {
        if let Err(message) = store_query.set(key, value) {
            return Response::error(400, message);
        }
    }
    Response::ok(
        answer_query(&view.campaigns(), &store_query)
            .to_json()
            .render(),
    )
}

fn campaigns(view: &StoreView) -> Response {
    Response::ok(
        Json::Obj(vec![(
            "campaigns".into(),
            Json::Arr(
                view.campaigns()
                    .iter()
                    .map(|campaign| {
                        Json::Obj(vec![
                            ("id".into(), Json::str(&campaign.id)),
                            (
                                "scenarios".into(),
                                Json::Int(campaign.report.scenarios.len() as i64),
                            ),
                            ("threads".into(), Json::Int(campaign.report.threads as i64)),
                            (
                                "wall_clock_ms".into(),
                                Json::Num(campaign.report.wall_clock_ms),
                            ),
                        ])
                    })
                    .collect(),
            ),
        )])
        .render(),
    )
}

fn catalog(view: &StoreView) -> Response {
    Response::ok(catalog_json(&view.campaigns()).render())
}

fn device_leaderboard(request: &Request, view: &StoreView, slug: &str) -> Response {
    let Some(device) = DeviceKind::from_slug(slug) else {
        let known: Vec<&str> = DeviceKind::all().iter().map(|d| d.slug()).collect();
        return Response::error(
            404,
            format!(
                "unknown device `{slug}` (expected one of {})",
                known.join(", ")
            ),
        );
    };
    let top = match request.param("top") {
        None => 10,
        Some(raw) => match raw.parse::<usize>() {
            Ok(top) => top,
            Err(_) => {
                return Response::error(400, format!("`top` expects an integer, got `{raw}`"))
            }
        },
    };
    Response::ok(
        leaderboard(&view.campaigns(), device, top)
            .to_json()
            .render(),
    )
}

fn ingest(request: &Request, view: &StoreView) -> Response {
    let Some(id) = request.param("id") else {
        return Response::error(400, "POST /ingest requires an `id` query parameter");
    };
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return Response::error(400, "request body is not UTF-8");
    };
    match view.ingest(id, body) {
        Ok(stored) => {
            let mut response = Response::ok(
                Json::Obj(vec![
                    ("id".into(), Json::str(&stored.id)),
                    (
                        "scenarios".into(),
                        Json::Int(stored.report.scenarios.len() as i64),
                    ),
                ])
                .render(),
            );
            response.status = 201;
            response
        }
        Err(error @ StoreError::DuplicateId(_)) => Response::error(409, error.to_string()),
        Err(error @ (StoreError::BadArtifact { .. } | StoreError::InvalidId(_))) => {
            Response::error(400, error.to_string())
        }
        Err(error @ StoreError::Io { .. }) => Response::error(500, error.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CampaignConfig, RewardSetting};
    use crate::store::ArtifactStore;
    use crate::{campaign_json, CampaignEngine};

    fn get(path_and_query: &str) -> Request {
        let (path, raw_query) = match path_and_query.split_once('?') {
            Some((p, q)) => (p, q),
            None => (path_and_query, ""),
        };
        Request {
            method: "GET".into(),
            path: path.into(),
            query: raw_query
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|pair| {
                    let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
                    (k.to_string(), v.to_string())
                })
                .collect(),
            body: Vec::new(),
            keep_alive: false,
        }
    }

    fn seeded_view(tag: &str) -> StoreView {
        let root = std::env::temp_dir().join(format!("fahana-router-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let store = ArtifactStore::open(&root).unwrap();
        let outcome = CampaignEngine::new(CampaignConfig {
            episodes: 4,
            samples: 120,
            threads: 2,
            seed: 9,
            devices: vec![DeviceKind::RaspberryPi4],
            rewards: vec![RewardSetting::balanced()],
            freezing: vec![true],
            ..CampaignConfig::default()
        })
        .unwrap()
        .run()
        .unwrap();
        store.ingest("seeded", &campaign_json(&outcome)).unwrap();
        StoreView::open(store).unwrap()
    }

    #[test]
    fn routes_cover_the_surface() {
        let view = seeded_view("surface");
        let obs = ServeTelemetry::disabled();
        assert_eq!(route(&get("/healthz"), &view, &obs).status, 200);
        assert_eq!(route(&get("/query"), &view, &obs).status, 200);
        assert_eq!(
            route(&get("/query?device=raspberry_pi_4"), &view, &obs).status,
            200
        );
        assert_eq!(route(&get("/campaigns"), &view, &obs).status, 200);
        assert_eq!(route(&get("/catalog"), &view, &obs).status, 200);
        assert_eq!(
            route(&get("/leaderboard/raspberry_pi_4"), &view, &obs).status,
            200
        );
        assert_eq!(route(&get("/leaderboard/toaster"), &view, &obs).status, 404);
        assert_eq!(
            route(&get("/leaderboard/raspberry_pi_4?top=x"), &view, &obs).status,
            400
        );
        assert_eq!(
            route(&get("/query?device=toaster"), &view, &obs).status,
            400
        );
        assert_eq!(route(&get("/query?bogus=1"), &view, &obs).status, 400);
        assert_eq!(route(&get("/nope"), &view, &obs).status, 404);

        let mut post = get("/query");
        post.method = "POST".into();
        assert_eq!(route(&post, &view, &obs).status, 405);

        std::fs::remove_dir_all(view.store().root()).ok();
    }

    #[test]
    fn observability_routes_answer_from_the_context() {
        let view = seeded_view("obs");
        let obs = ServeTelemetry::disabled();
        obs.record_request("/query", 200, std::time::Duration::from_millis(3), 0, 120);

        let metrics = route(&get("/metrics"), &view, &obs);
        assert_eq!(metrics.status, 200);
        assert_eq!(metrics.content_type, "text/plain; version=0.0.4");
        assert!(
            metrics
                .body
                .contains(r#"fahana_http_requests_total{endpoint="/query",status="200"} 1"#),
            "{}",
            metrics.body
        );
        assert!(metrics.body.contains("fahana_serve_uptime_seconds"));
        assert!(metrics.body.contains("fahana_store_generation 0"));

        let statusz = route(&get("/statusz"), &view, &obs);
        assert_eq!(statusz.status, 200);
        let parsed = Json::parse(&statusz.body).unwrap();
        assert_eq!(parsed.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(parsed.get("campaigns").unwrap().as_i64(), Some(1));
        let endpoints = parsed.get("endpoints").unwrap().as_arr().unwrap();
        assert_eq!(
            endpoints[0].get("endpoint").unwrap().as_str(),
            Some("/query")
        );
        assert_eq!(endpoints[0].get("requests").unwrap().as_i64(), Some(1));
        assert!(endpoints[0].get("p99_ms").unwrap().as_f64().unwrap() > 0.0);

        // reload bumps the generation /statusz and /metrics report
        view.reload().unwrap();
        let statusz = route(&get("/statusz"), &view, &obs);
        assert!(
            statusz.body.contains(r#""store_generation":1"#),
            "{}",
            statusz.body
        );

        // wrong methods on the new routes are 405 like everywhere else
        let mut post = get("/metrics");
        post.method = "POST".into();
        assert_eq!(route(&post, &view, &obs).status, 405);

        std::fs::remove_dir_all(view.store().root()).ok();
    }

    #[test]
    fn ingest_route_maps_store_errors_to_statuses() {
        let view = seeded_view("ingest");
        let obs = ServeTelemetry::disabled();
        let report =
            std::fs::read_to_string(view.store().root().join("artifacts").join("seeded.json"))
                .unwrap();

        let mut request = Request {
            method: "POST".into(),
            path: "/ingest".into(),
            query: vec![("id".into(), "fresh".into())],
            body: report.clone().into_bytes(),
            keep_alive: false,
        };
        assert_eq!(route(&request, &view, &obs).status, 201);
        // the view refreshed: /query now consults both campaigns
        let answer = route(&get("/query"), &view, &obs);
        assert!(
            answer.body.contains(r#""campaigns_consulted":2"#),
            "{}",
            answer.body
        );

        // duplicate → 409, garbage → 400, missing id → 400
        assert_eq!(route(&request, &view, &obs).status, 409);
        request.query[0].1 = "other".into();
        request.body = b"not json".to_vec();
        assert_eq!(route(&request, &view, &obs).status, 400);
        request.query.clear();
        assert_eq!(route(&request, &view, &obs).status, 400);

        std::fs::remove_dir_all(view.store().root()).ok();
    }
}
