//! Request routing: maps a parsed [`Request`] onto the store view.
//!
//! Every endpoint answers JSON. `GET /query` goes through the exact same
//! [`answer_query`] core (and the same [`StoreQuery::set`] filter parsing)
//! as `fahana-query --json`, so the daemon's answers are byte-identical to
//! the CLI's — pinned by `tests/serve_http.rs`.
//!
//! Read endpoints flow through the generation-keyed [`ResponseCache`]: the
//! router takes one consistent `(generation, campaigns)` snapshot per
//! request, serves cached bytes when the same question was already
//! rendered this generation, and — on the first request of a *new*
//! generation — prerenders the hot responses (`/catalog`, `/campaigns`,
//! every `/leaderboard/{device}`) so an ingest never leaves the next
//! burst of traffic cold. Cached or not, read responses carry an
//! `X-Fahana-Generation` header naming the store state they reflect.

use edgehw::DeviceKind;

use crate::report::Json;
use crate::serve::cache::{CacheLookup, ResponseCache};
use crate::serve::http::{Request, Response};
use crate::serve::obs::ServeTelemetry;
use crate::serve::view::StoreView;
use crate::store::{
    answer_query, catalog_json, leaderboard, StoreError, StoreQuery, StoredCampaign,
};

/// Whether a path is one of the read endpoints whose response is a pure
/// function of the campaign snapshot — the set the cache may hold.
fn is_read_path(path: &str) -> bool {
    matches!(path, "/healthz" | "/query" | "/campaigns" | "/catalog")
        || path.starts_with("/leaderboard/")
}

/// Routes one request to its handler. `obs` answers the observability
/// endpoints (`/metrics`, `/statusz`) and is otherwise untouched — request
/// accounting happens in the connection loop, not here. `cache` holds
/// rendered read responses for the current store generation.
pub fn route(
    request: &Request,
    view: &StoreView,
    obs: &ServeTelemetry,
    cache: &ResponseCache,
) -> Response {
    // volatile (/metrics, /statusz change with every scrape) and mutating
    // endpoints never touch the cache
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/metrics") => return Response::text(obs.render_metrics(view)),
        ("GET", "/statusz") => return Response::ok(obs.statusz_json(view).render()),
        ("POST", "/ingest") => return ingest(request, view),
        _ => {}
    }
    // one consistent (generation, campaigns) pair for the whole request:
    // the bytes rendered below reflect exactly this generation, so they
    // may be cached under it — and only under it
    let (generation, campaigns) = view.snapshot();
    if request.method == "GET" && is_read_path(&request.path) {
        let key = ResponseCache::key(request);
        match cache.lookup(&key, generation) {
            CacheLookup::Hit(response) => return response,
            CacheLookup::Miss { flushed } => {
                if flushed {
                    prerender(cache, generation, &campaigns);
                    // the prerender may have produced exactly this answer
                    if let CacheLookup::Hit(response) = cache.lookup(&key, generation) {
                        return response;
                    }
                }
                let response = route_read(request, &campaigns).with_generation(generation);
                if response.status == 200 {
                    cache.insert(key, generation, response.clone());
                }
                return response;
            }
        }
    }
    route_read(request, &campaigns)
}

/// Fills the cache's hot set for the view's current generation. The
/// server calls this once at bind time; after that, the flush edge in
/// [`route`] re-warms the cache on every generation bump.
pub(crate) fn warm(cache: &ResponseCache, view: &StoreView) {
    let (generation, campaigns) = view.snapshot();
    prerender(cache, generation, &campaigns);
}

/// Renders the hot read responses into the cache for a fresh generation:
/// the catalog, the campaign summary, and every device leaderboard.
fn prerender(cache: &ResponseCache, generation: u64, campaigns: &[StoredCampaign]) {
    let hot = ["/catalog".to_string(), "/campaigns".to_string()]
        .into_iter()
        .chain(
            DeviceKind::all()
                .into_iter()
                .map(|device| format!("/leaderboard/{}", device.slug())),
        );
    for path in hot {
        let request = Request {
            method: "GET".into(),
            path,
            query: Vec::new(),
            body: Vec::new(),
            keep_alive: true,
        };
        let response = route_read(&request, campaigns).with_generation(generation);
        if response.status == 200 {
            cache.insert(ResponseCache::key(&request), generation, response);
        }
    }
}

/// The pure read surface: every handler here is a function of the campaign
/// snapshot alone, which is what makes its responses cacheable.
fn route_read(request: &Request, campaigns: &[StoredCampaign]) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => healthz(campaigns),
        ("GET", "/query") => query(request, campaigns),
        ("GET", "/campaigns") => campaign_summaries(campaigns),
        ("GET", "/catalog") => catalog(campaigns),
        ("GET", path) if path.starts_with("/leaderboard/") => {
            device_leaderboard(request, campaigns, &path["/leaderboard/".len()..])
        }
        (
            _,
            "/healthz" | "/query" | "/campaigns" | "/catalog" | "/ingest" | "/metrics" | "/statusz",
        ) => Response::error(405, format!("method {} not allowed here", request.method)),
        (_, path) if path.starts_with("/leaderboard/") => {
            Response::error(405, format!("method {} not allowed here", request.method))
        }
        _ => Response::error(404, format!("no route for {}", request.path)),
    }
}

fn healthz(campaigns: &[StoredCampaign]) -> Response {
    Response::ok(
        Json::Obj(vec![
            ("status".into(), Json::str("ok")),
            ("campaigns".into(), Json::Int(campaigns.len() as i64)),
            (
                "scenarios".into(),
                Json::Int(
                    campaigns
                        .iter()
                        .map(|c| c.report.scenarios.len() as i64)
                        .sum(),
                ),
            ),
        ])
        .render(),
    )
}

fn query(request: &Request, campaigns: &[StoredCampaign]) -> Response {
    let mut store_query = StoreQuery::default();
    for (key, value) in &request.query {
        if let Err(message) = store_query.set(key, value) {
            return Response::error(400, message);
        }
    }
    Response::ok(answer_query(campaigns, &store_query).to_json().render())
}

fn campaign_summaries(campaigns: &[StoredCampaign]) -> Response {
    Response::ok(
        Json::Obj(vec![(
            "campaigns".into(),
            Json::Arr(
                campaigns
                    .iter()
                    .map(|campaign| {
                        Json::Obj(vec![
                            ("id".into(), Json::str(&campaign.id)),
                            (
                                "scenarios".into(),
                                Json::Int(campaign.report.scenarios.len() as i64),
                            ),
                            ("threads".into(), Json::Int(campaign.report.threads as i64)),
                            (
                                "wall_clock_ms".into(),
                                Json::Num(campaign.report.wall_clock_ms),
                            ),
                        ])
                    })
                    .collect(),
            ),
        )])
        .render(),
    )
}

fn catalog(campaigns: &[StoredCampaign]) -> Response {
    Response::ok(catalog_json(campaigns).render())
}

fn device_leaderboard(request: &Request, campaigns: &[StoredCampaign], slug: &str) -> Response {
    let Some(device) = DeviceKind::from_slug(slug) else {
        let known: Vec<&str> = DeviceKind::all().iter().map(|d| d.slug()).collect();
        return Response::error(
            404,
            format!(
                "unknown device `{slug}` (expected one of {})",
                known.join(", ")
            ),
        );
    };
    let top = match request.param("top") {
        None => 10,
        Some(raw) => match raw.parse::<usize>() {
            Ok(top) => top,
            Err(_) => {
                return Response::error(400, format!("`top` expects an integer, got `{raw}`"))
            }
        },
    };
    Response::ok(leaderboard(campaigns, device, top).to_json().render())
}

fn ingest(request: &Request, view: &StoreView) -> Response {
    let Some(id) = request.param("id") else {
        return Response::error(400, "POST /ingest requires an `id` query parameter");
    };
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return Response::error(400, "request body is not UTF-8");
    };
    match view.ingest(id, body) {
        Ok(stored) => {
            let mut response = Response::ok(
                Json::Obj(vec![
                    ("id".into(), Json::str(&stored.id)),
                    (
                        "scenarios".into(),
                        Json::Int(stored.report.scenarios.len() as i64),
                    ),
                ])
                .render(),
            );
            response.status = 201;
            response
        }
        Err(error @ StoreError::DuplicateId(_)) => Response::error(409, error.to_string()),
        Err(error @ (StoreError::BadArtifact { .. } | StoreError::InvalidId(_))) => {
            Response::error(400, error.to_string())
        }
        Err(error @ StoreError::Io { .. }) => Response::error(500, error.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CampaignConfig, RewardSetting};
    use crate::store::ArtifactStore;
    use crate::{campaign_json, CampaignEngine};

    fn get(path_and_query: &str) -> Request {
        let (path, raw_query) = match path_and_query.split_once('?') {
            Some((p, q)) => (p, q),
            None => (path_and_query, ""),
        };
        Request {
            method: "GET".into(),
            path: path.into(),
            query: raw_query
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|pair| {
                    let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
                    (k.to_string(), v.to_string())
                })
                .collect(),
            body: Vec::new(),
            keep_alive: false,
        }
    }

    fn seeded_view(tag: &str) -> StoreView {
        let root = std::env::temp_dir().join(format!("fahana-router-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let store = ArtifactStore::open(&root).unwrap();
        let outcome = CampaignEngine::new(CampaignConfig {
            episodes: 4,
            samples: 120,
            threads: 2,
            seed: 9,
            devices: vec![DeviceKind::RaspberryPi4],
            rewards: vec![RewardSetting::balanced()],
            freezing: vec![true],
            ..CampaignConfig::default()
        })
        .unwrap()
        .run()
        .unwrap();
        store.ingest("seeded", &campaign_json(&outcome)).unwrap();
        StoreView::open(store).unwrap()
    }

    #[test]
    fn routes_cover_the_surface() {
        let view = seeded_view("surface");
        let obs = ServeTelemetry::disabled();
        let cache = ResponseCache::new(64);
        assert_eq!(route(&get("/healthz"), &view, &obs, &cache).status, 200);
        assert_eq!(route(&get("/query"), &view, &obs, &cache).status, 200);
        assert_eq!(
            route(&get("/query?device=raspberry_pi_4"), &view, &obs, &cache).status,
            200
        );
        assert_eq!(route(&get("/campaigns"), &view, &obs, &cache).status, 200);
        assert_eq!(route(&get("/catalog"), &view, &obs, &cache).status, 200);
        assert_eq!(
            route(&get("/leaderboard/raspberry_pi_4"), &view, &obs, &cache).status,
            200
        );
        assert_eq!(
            route(&get("/leaderboard/toaster"), &view, &obs, &cache).status,
            404
        );
        assert_eq!(
            route(
                &get("/leaderboard/raspberry_pi_4?top=x"),
                &view,
                &obs,
                &cache
            )
            .status,
            400
        );
        assert_eq!(
            route(&get("/query?device=toaster"), &view, &obs, &cache).status,
            400
        );
        assert_eq!(
            route(&get("/query?bogus=1"), &view, &obs, &cache).status,
            400
        );
        assert_eq!(route(&get("/nope"), &view, &obs, &cache).status, 404);

        let mut post = get("/query");
        post.method = "POST".into();
        assert_eq!(route(&post, &view, &obs, &cache).status, 405);

        std::fs::remove_dir_all(view.store().root()).ok();
    }

    #[test]
    fn observability_routes_answer_from_the_context() {
        let view = seeded_view("obs");
        let obs = ServeTelemetry::disabled();
        let cache = ResponseCache::new(64);
        obs.record_request("/query", 200, std::time::Duration::from_millis(3), 0, 120);

        let metrics = route(&get("/metrics"), &view, &obs, &cache);
        assert_eq!(metrics.status, 200);
        assert_eq!(metrics.content_type, "text/plain; version=0.0.4");
        assert!(
            metrics
                .body
                .contains(r#"fahana_http_requests_total{endpoint="/query",status="200"} 1"#),
            "{}",
            metrics.body
        );
        assert!(metrics.body.contains("fahana_serve_uptime_seconds"));
        assert!(metrics.body.contains("fahana_store_generation 0"));

        let statusz = route(&get("/statusz"), &view, &obs, &cache);
        assert_eq!(statusz.status, 200);
        let parsed = Json::parse(&statusz.body).unwrap();
        assert_eq!(parsed.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(parsed.get("campaigns").unwrap().as_i64(), Some(1));
        let endpoints = parsed.get("endpoints").unwrap().as_arr().unwrap();
        assert_eq!(
            endpoints[0].get("endpoint").unwrap().as_str(),
            Some("/query")
        );
        assert_eq!(endpoints[0].get("requests").unwrap().as_i64(), Some(1));
        assert!(endpoints[0].get("p99_ms").unwrap().as_f64().unwrap() > 0.0);

        // reload bumps the generation /statusz and /metrics report
        view.reload().unwrap();
        let statusz = route(&get("/statusz"), &view, &obs, &cache);
        assert!(
            statusz.body.contains(r#""store_generation":1"#),
            "{}",
            statusz.body
        );

        // wrong methods on the new routes are 405 like everywhere else
        let mut post = get("/metrics");
        post.method = "POST".into();
        assert_eq!(route(&post, &view, &obs, &cache).status, 405);

        std::fs::remove_dir_all(view.store().root()).ok();
    }

    #[test]
    fn read_responses_are_cached_per_generation_and_flushed_on_ingest() {
        let view = seeded_view("cache");
        let obs = ServeTelemetry::disabled();
        let cache = ResponseCache::new(64);

        // first read of generation 0: a miss that prerenders the hot set
        let first = route(&get("/query"), &view, &obs, &cache);
        assert_eq!(first.status, 200);
        assert_eq!(first.generation, Some(0));
        let stats = cache.stats();
        assert!(
            stats.entries > 2,
            "prerender filled catalog + campaigns + leaderboards: {stats:?}"
        );
        let hits_before = stats.hits;

        // the same question again is a hit with identical bytes
        let second = route(&get("/query"), &view, &obs, &cache);
        assert_eq!(second, first, "cached bytes must be byte-identical");
        assert_eq!(cache.stats().hits, hits_before + 1);

        // the prerendered catalog is served without a render miss
        let catalog_response = route(&get("/catalog"), &view, &obs, &cache);
        assert_eq!(catalog_response.generation, Some(0));
        assert_eq!(cache.stats().hits, hits_before + 2);

        // an ingest bumps the generation: the old bytes are flushed and
        // the fresh answer reflects both campaigns
        let report =
            std::fs::read_to_string(view.store().root().join("artifacts").join("seeded.json"))
                .unwrap();
        let ingest = Request {
            method: "POST".into(),
            path: "/ingest".into(),
            query: vec![("id".into(), "fresh".into())],
            body: report.into_bytes(),
            keep_alive: false,
        };
        assert_eq!(route(&ingest, &view, &obs, &cache).status, 201);
        let after = route(&get("/query"), &view, &obs, &cache);
        assert_eq!(after.generation, Some(1));
        assert!(
            after.body.contains(r#""campaigns_consulted":2"#),
            "{}",
            after.body
        );
        assert_ne!(after.body, first.body, "stale bytes were not served");
        assert_eq!(cache.stats().generation, 1);

        // error responses are tagged but not cached
        assert_eq!(
            route(&get("/query?bogus=1"), &view, &obs, &cache).generation,
            Some(1)
        );
        let entries = cache.stats().entries;
        route(&get("/query?bogus=1"), &view, &obs, &cache);
        assert_eq!(cache.stats().entries, entries, "400s are never cached");

        std::fs::remove_dir_all(view.store().root()).ok();
    }

    #[test]
    fn ingest_route_maps_store_errors_to_statuses() {
        let view = seeded_view("ingest");
        let obs = ServeTelemetry::disabled();
        let cache = ResponseCache::new(64);
        let report =
            std::fs::read_to_string(view.store().root().join("artifacts").join("seeded.json"))
                .unwrap();

        let mut request = Request {
            method: "POST".into(),
            path: "/ingest".into(),
            query: vec![("id".into(), "fresh".into())],
            body: report.clone().into_bytes(),
            keep_alive: false,
        };
        assert_eq!(route(&request, &view, &obs, &cache).status, 201);
        // the view refreshed: /query now consults both campaigns
        let answer = route(&get("/query"), &view, &obs, &cache);
        assert!(
            answer.body.contains(r#""campaigns_consulted":2"#),
            "{}",
            answer.body
        );

        // duplicate → 409, garbage → 400, missing id → 400
        assert_eq!(route(&request, &view, &obs, &cache).status, 409);
        request.query[0].1 = "other".into();
        request.body = b"not json".to_vec();
        assert_eq!(route(&request, &view, &obs, &cache).status, 400);
        request.query.clear();
        assert_eq!(route(&request, &view, &obs, &cache).status, 400);

        std::fs::remove_dir_all(view.store().root()).ok();
    }
}
