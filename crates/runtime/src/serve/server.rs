//! The long-lived HTTP server: a `TcpListener` accept loop fanning
//! connections out on the work-stealing [`ThreadPool`].
//!
//! Connections honor HTTP/1.1 keep-alive: a client that sends requests
//! sequentially (the `fahana-shard` coordinator's ingest bursts, a
//! monitoring scraper) reuses one connection instead of paying a TCP
//! handshake per question. A connection is one pool job for its whole
//! lifetime — the same pool machinery campaigns use for scenario fan-out
//! handles request fan-out here — so reuse is bounded: an idle connection
//! is dropped after [`READ_TIMEOUT`], and no connection serves more than
//! [`MAX_REQUESTS_PER_CONNECTION`] requests before the server closes it.

use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::pool::ThreadPool;
use crate::serve::http::{read_request, Response};
use crate::serve::obs::ServeTelemetry;
use crate::serve::router::route;
use crate::serve::view::StoreView;
use crate::telemetry::Telemetry;

/// How long a connection may dribble its request in (or sit idle between
/// keep-alive requests) before being dropped.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Upper bound on requests served over one kept-alive connection, so a
/// single peer cannot pin a pool worker forever.
const MAX_REQUESTS_PER_CONNECTION: usize = 1000;

/// A bound, ready-to-run `fahana-serve` server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    view: Arc<StoreView>,
    pool: ThreadPool,
    shutdown: Arc<AtomicBool>,
    obs: Arc<ServeTelemetry>,
}

/// A remote control for a running [`Server`] — cloneable into other
/// threads to stop the accept loop.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Stops the server's accept loop. Idempotent; in-flight requests
    /// finish on the pool.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        // unblock the accept() the server is parked in
        TcpStream::connect(self.addr).ok();
    }
}

impl Server {
    /// Binds to `addr` (use port 0 to let the OS pick) over an
    /// already-opened view, with `threads` pool workers handling
    /// connections.
    ///
    /// # Errors
    ///
    /// The bind error, if the address is taken or unroutable.
    pub fn bind(
        addr: impl ToSocketAddrs,
        view: StoreView,
        threads: usize,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let pool = ThreadPool::new(threads);
        let obs = Arc::new(ServeTelemetry::new(
            Telemetry::disabled(),
            Some(pool.monitor()),
        ));
        Ok(Server {
            listener,
            view: Arc::new(view),
            pool,
            shutdown: Arc::new(AtomicBool::new(false)),
            obs,
        })
    }

    /// Replaces the server's telemetry bundle (e.g. to attach a
    /// `--trace-out` sink before [`Server::run`]). Request accounting
    /// accumulated so far is discarded with the old context.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.obs = Arc::new(ServeTelemetry::new(telemetry, Some(self.pool.monitor())));
    }

    /// The server's observability context (`/metrics`, `/statusz`).
    pub fn obs(&self) -> &Arc<ServeTelemetry> {
        &self.obs
    }

    /// The address actually bound (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures (never seen in practice).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared store view the server answers from.
    pub fn view(&self) -> &Arc<StoreView> {
        &self.view
    }

    /// A handle that can stop the accept loop from another thread.
    ///
    /// # Errors
    ///
    /// As [`Server::local_addr`].
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.local_addr()?,
            shutdown: Arc::clone(&self.shutdown),
        })
    }

    /// Accepts connections until [`ServerHandle::shutdown`] is called,
    /// dispatching each onto the pool. Blocks the calling thread.
    ///
    /// # Errors
    ///
    /// Fatal listener errors only; per-connection errors are answered on
    /// the wire (4xx/5xx) or dropped, never propagated.
    pub fn run(&self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = stream else {
                continue; // transient accept failure (EMFILE, reset, …)
            };
            let view = Arc::clone(&self.view);
            let obs = Arc::clone(&self.obs);
            self.pool
                .spawn(move || handle_connection(stream, &view, &obs));
        }
        Ok(())
    }
}

/// Serves requests off one connection until the peer asks to close (or
/// closes), the idle timeout fires, the per-connection request cap is
/// reached, or a request fails to parse. Every request is accounted into
/// `obs` (endpoint counter, latency, byte totals); the connection itself
/// is accounted on the way out (keep-alive reuse).
fn handle_connection(mut stream: TcpStream, view: &StoreView, obs: &ServeTelemetry) {
    stream.set_read_timeout(Some(READ_TIMEOUT)).ok();
    let mut served = 0;
    while served < MAX_REQUESTS_PER_CONNECTION {
        match read_request(&mut stream) {
            Ok(Some(request)) => {
                served += 1;
                // honor the client's wish, but advertise close on the
                // connection's last allowed request
                let keep_alive = request.keep_alive && served < MAX_REQUESTS_PER_CONNECTION;
                let handling = Instant::now();
                let response = route(&request, view, obs);
                let written = response.write_to(&mut stream, keep_alive);
                obs.record_request(
                    &request.path,
                    response.status,
                    handling.elapsed(),
                    request.body.len(),
                    written.as_ref().copied().unwrap_or(0),
                );
                if written.is_err() || !keep_alive {
                    break; // peer gone, or an agreed close
                }
            }
            // clean end of a kept-alive connection (EOF or idle timeout)
            Ok(None) => break,
            Err(bad) => {
                // the peer may already be gone; nothing useful to do about it
                Response::error(400, bad.to_string())
                    .write_to(&mut stream, false)
                    .ok();
                break;
            }
        }
    }
    obs.record_connection(served);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ArtifactStore;
    use std::io::{Read, Write};

    #[test]
    fn server_binds_answers_and_shuts_down() {
        let root = std::env::temp_dir().join(format!("fahana-serve-unit-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let view = StoreView::open(ArtifactStore::open(&root).unwrap()).unwrap();
        let server = Server::bind("127.0.0.1:0", view, 2).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle().unwrap();
        let runner = std::thread::spawn(move || server.run().unwrap());

        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 200 OK\r\n"), "{raw}");
        assert!(raw.contains("Connection: close"), "{raw}");
        assert!(raw.contains(r#""status":"ok""#), "{raw}");

        // a malformed request gets a 400, not a dead server
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"BOGUS\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");

        handle.shutdown();
        runner.join().unwrap();
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn oversized_header_blocks_are_rejected_not_buffered() {
        let root = std::env::temp_dir().join(format!("fahana-serve-flood-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let view = StoreView::open(ArtifactStore::open(&root).unwrap()).unwrap();
        let server = Server::bind("127.0.0.1:0", view, 2).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle().unwrap();
        let runner = std::thread::spawn(move || server.run().unwrap());

        // a header block that never terminates: the server must cut it off
        // at the head cap and answer 400 instead of buffering forever
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
        let junk = vec![b'a'; 8 * 1024];
        for _ in 0..12 {
            // the server may close mid-flood; that's the point
            if stream.write_all(&junk).is_err() {
                break;
            }
        }
        stream.shutdown(std::net::Shutdown::Write).ok();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).ok();
        assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");
        assert!(raw.contains("truncated or larger"), "{raw}");

        handle.shutdown();
        runner.join().unwrap();
        std::fs::remove_dir_all(&root).ok();
    }
}
