//! The long-lived HTTP server: a `TcpListener` accept loop feeding the
//! event-driven [`reactor`](crate::serve::reactor).
//!
//! Connections honor HTTP/1.1 keep-alive, and — on unix — connection
//! count and pool-worker count are independent axes: each accepted
//! socket is registered with the reactor's readiness loop, which parks
//! it nonblocking until a complete request is buffered and only then
//! dispatches one pool job for the routing work. Thousands of
//! mostly-idle keep-alive connections share a `--threads 2` pool. (On
//! non-unix targets a blocking fallback path keeps the old
//! one-connection-per-worker model.) Reuse is bounded either way: an
//! idle connection is dropped after the read timeout, and no connection
//! serves more than [`MAX_REQUESTS_PER_CONNECTION`] requests before the
//! server closes it.
//!
//! The accept loop stays the backpressure point. At most
//! [`ServeOptions::max_inflight`] connections are in flight at once;
//! connection number `max_inflight + 1` is answered `503 Service
//! Unavailable` with a `Retry-After` header *inline on the accept thread*
//! (never queued behind the saturated pool) and closed. Read deadlines
//! ([`ServeOptions::read_timeout`]) come from the reactor's timer wheel,
//! not `SO_RCVTIMEO`, so a slowloris peer gets its `408` without ever
//! occupying a worker; oversized bodies still draw a `413` at
//! [`ServeOptions::max_body_bytes`].

use std::io::Read;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
#[cfg(not(unix))]
use std::time::Instant;

use crate::pool::ThreadPool;
use crate::serve::cache::ResponseCache;
#[cfg(not(unix))]
use crate::serve::http::{read_request, RequestLimits};
use crate::serve::http::{Response, DEFAULT_MAX_BODY_BYTES, DEFAULT_READ_TIMEOUT};
use crate::serve::obs::ServeTelemetry;
#[cfg(unix)]
use crate::serve::reactor::{set_sndbuf, spawn_reactor, ReactorConfig};
#[cfg(not(unix))]
use crate::serve::router::route;
use crate::serve::router::warm;
use crate::serve::view::StoreView;
use crate::telemetry::Telemetry;

/// Upper bound on requests served over one kept-alive connection, so a
/// single peer cannot pin a connection slot forever.
pub(crate) const MAX_REQUESTS_PER_CONNECTION: usize = 1000;

/// How long the accept loop sleeps after a transient `accept()` failure
/// (EMFILE, reset-before-accept, …) so a persistent local error cannot
/// spin it hot.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(10);

/// Which readiness backend the reactor should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReactorBackend {
    /// `epoll` where the platform has it, `poll(2)` otherwise.
    #[default]
    Auto,
    /// Require `epoll`; spawning the reactor fails off-Linux.
    Epoll,
    /// Force the portable `poll(2)` path (also useful to exercise the
    /// fallback on Linux).
    Poll,
}

impl ReactorBackend {
    /// Parses a `--reactor-backend` CLI value.
    ///
    /// # Errors
    ///
    /// A usage message naming the accepted values.
    pub fn parse(value: &str) -> Result<ReactorBackend, String> {
        match value {
            "auto" => Ok(ReactorBackend::Auto),
            "epoll" => Ok(ReactorBackend::Epoll),
            "poll" => Ok(ReactorBackend::Poll),
            other => Err(format!(
                "unknown reactor backend `{other}` (expected auto, epoll, or poll)"
            )),
        }
    }
}

/// Server tuning knobs, all bounded with conservative defaults. Every
/// field has a matching `fahana-serve` CLI flag.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Pool worker threads handling dispatched requests (connections no
    /// longer occupy one for their lifetime).
    pub threads: usize,
    /// Most connections in flight at once; past this, new connections are
    /// answered 503 + `Retry-After` at the door.
    pub max_inflight: usize,
    /// Whole-request read deadline (slowloris cutoff) and keep-alive idle
    /// timeout, enforced by the reactor's deadline wheel.
    pub read_timeout: Duration,
    /// Largest accepted request body; beyond it the request is answered
    /// 413 without buffering the body.
    pub max_body_bytes: usize,
    /// Response-cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
    /// The `Retry-After` value (seconds) sent with saturation 503s.
    pub retry_after_secs: u64,
    /// Readiness backend selection for the reactor.
    pub backend: ReactorBackend,
    /// When set, shrink each accepted socket's kernel send buffer to
    /// this many bytes (test-facing: forces the partial-write path).
    pub sndbuf: Option<usize>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            threads: 4,
            max_inflight: 256,
            read_timeout: DEFAULT_READ_TIMEOUT,
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
            cache_capacity: 256,
            retry_after_secs: 1,
            backend: ReactorBackend::Auto,
            sndbuf: None,
        }
    }
}

/// A bound, ready-to-run `fahana-serve` server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    view: Arc<StoreView>,
    pool: Arc<ThreadPool>,
    shutdown: Arc<AtomicBool>,
    obs: Arc<ServeTelemetry>,
    cache: Arc<ResponseCache>,
    options: ServeOptions,
    inflight: Arc<AtomicUsize>,
}

/// A remote control for a running [`Server`] — cloneable into other
/// threads to stop the accept loop.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Stops the server's accept loop. Idempotent; in-flight requests
    /// finish on the pool.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        // unblock the accept() the server is parked in
        TcpStream::connect(self.addr).ok();
    }
}

impl Server {
    /// Binds to `addr` (use port 0 to let the OS pick) over an
    /// already-opened view, with `threads` pool workers handling
    /// connections and every other knob at its default.
    ///
    /// # Errors
    ///
    /// The bind error, if the address is taken or unroutable.
    pub fn bind(
        addr: impl ToSocketAddrs,
        view: StoreView,
        threads: usize,
    ) -> std::io::Result<Server> {
        Server::bind_with(
            addr,
            view,
            ServeOptions {
                threads,
                ..ServeOptions::default()
            },
        )
    }

    /// Binds to `addr` with explicit [`ServeOptions`]. The response
    /// cache's hot entries are prerendered before the first connection is
    /// accepted.
    ///
    /// # Errors
    ///
    /// As [`Server::bind`].
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        view: StoreView,
        options: ServeOptions,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let pool = Arc::new(ThreadPool::new(options.threads));
        let cache = Arc::new(ResponseCache::new(options.cache_capacity));
        warm(&cache, &view);
        let obs = Arc::new(ServeTelemetry::new(
            Telemetry::disabled(),
            Some(pool.monitor()),
            Some(Arc::clone(&cache)),
        ));
        Ok(Server {
            listener,
            view: Arc::new(view),
            pool,
            shutdown: Arc::new(AtomicBool::new(false)),
            obs,
            cache,
            options,
            inflight: Arc::new(AtomicUsize::new(0)),
        })
    }

    /// Replaces the server's telemetry bundle (e.g. to attach a
    /// `--trace-out` sink before [`Server::run`]). Request accounting
    /// accumulated so far is discarded with the old context.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.obs = Arc::new(ServeTelemetry::new(
            telemetry,
            Some(self.pool.monitor()),
            Some(Arc::clone(&self.cache)),
        ));
    }

    /// The server's observability context (`/metrics`, `/statusz`).
    pub fn obs(&self) -> &Arc<ServeTelemetry> {
        &self.obs
    }

    /// The server's response cache.
    pub fn cache(&self) -> &Arc<ResponseCache> {
        &self.cache
    }

    /// The address actually bound (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures (never seen in practice).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared store view the server answers from.
    pub fn view(&self) -> &Arc<StoreView> {
        &self.view
    }

    /// A handle that can stop the accept loop from another thread.
    ///
    /// # Errors
    ///
    /// As [`Server::local_addr`].
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.local_addr()?,
            shutdown: Arc::clone(&self.shutdown),
        })
    }

    /// Accepts connections until [`ServerHandle::shutdown`] is called.
    /// On unix each connection is registered with the reactor's
    /// readiness loop; elsewhere it occupies a pool worker for its
    /// lifetime. Blocks the calling thread.
    ///
    /// # Errors
    ///
    /// Fatal listener or reactor-spawn errors only; per-connection errors
    /// are answered on the wire (4xx/5xx) or dropped, never propagated.
    pub fn run(&self) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            self.run_event_driven()
        }
        #[cfg(not(unix))]
        {
            self.run_blocking()
        }
    }

    /// Accepts a connection from the listener, applying the transient-
    /// failure backoff, TCP_NODELAY, the optional SO_SNDBUF override, and
    /// the inline 503 in-flight gate. `Ok(None)` means "skip this one and
    /// keep accepting"; a returned stream holds an in-flight slot.
    fn accept_gated(
        &self,
        stream: std::io::Result<TcpStream>,
    ) -> std::io::Result<Option<TcpStream>> {
        let Ok(mut stream) = stream else {
            // transient accept failure (EMFILE, reset, …): count it
            // and back off briefly instead of spinning on the error
            self.obs.record_accept_error();
            std::thread::sleep(ACCEPT_BACKOFF);
            return Ok(None);
        };
        // answers are small and written head-then-body; without
        // this, Nagle + delayed-ACK adds ~40ms to every response
        stream.set_nodelay(true).ok();
        #[cfg(unix)]
        if let Some(bytes) = self.options.sndbuf {
            set_sndbuf(&stream, bytes).ok();
        }
        // the in-flight gate: claim a slot optimistically; if that
        // overshoots the limit, give the slot back and turn the
        // connection away at the door — inline, on the accept thread,
        // so a saturated pool cannot delay the 503 either
        if self.inflight.fetch_add(1, Ordering::AcqRel) >= self.options.max_inflight {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            self.obs.record_rejected();
            stream
                .set_write_timeout(Some(Duration::from_millis(250)))
                .ok();
            Response::error(503, "server saturated; retry shortly")
                .with_retry_after(self.options.retry_after_secs)
                .write_to(&mut stream, false)
                .ok();
            // the client's request was never read; closing with unread
            // bytes in the receive buffer makes the kernel RST the
            // connection, which can destroy the 503 before the client
            // reads it. Send our FIN, then drain briefly so the close
            // is orderly. Bounded, so a rejection flood cannot stall
            // the accept thread for long.
            stream.shutdown(std::net::Shutdown::Write).ok();
            stream
                .set_read_timeout(Some(Duration::from_millis(50)))
                .ok();
            let mut scratch = [0u8; 4096];
            for _ in 0..4 {
                match stream.read(&mut scratch) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
            }
            return Ok(None);
        }
        Ok(Some(stream))
    }

    /// The event-driven accept loop: every admitted connection is handed
    /// to the reactor nonblocking; pool workers only ever see complete,
    /// parsed requests.
    #[cfg(unix)]
    fn run_event_driven(&self) -> std::io::Result<()> {
        let mut reactor = spawn_reactor(
            ReactorConfig {
                read_timeout: self.options.read_timeout,
                max_body_bytes: self.options.max_body_bytes,
                backend: self.options.backend,
            },
            Arc::clone(&self.pool),
            Arc::clone(&self.view),
            Arc::clone(&self.obs),
            Arc::clone(&self.cache),
            Arc::clone(&self.inflight),
        )?;
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let Some(stream) = self.accept_gated(stream)? else {
                continue;
            };
            if stream.set_nonblocking(true).is_err() {
                self.inflight.fetch_sub(1, Ordering::AcqRel);
                self.obs.record_accept_error();
                continue;
            }
            // the reactor owns the in-flight slot from here
            reactor.register(stream);
        }
        reactor.shutdown_and_join();
        Ok(())
    }

    /// Fallback for targets without the reactor: one pool worker per
    /// connection, blocking reads under `SO_RCVTIMEO`.
    #[cfg(not(unix))]
    fn run_blocking(&self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let Some(stream) = self.accept_gated(stream)? else {
                continue;
            };
            let view = Arc::clone(&self.view);
            let obs = Arc::clone(&self.obs);
            let cache = Arc::clone(&self.cache);
            let inflight = Arc::clone(&self.inflight);
            let limits = RequestLimits {
                read_timeout: self.options.read_timeout,
                max_body_bytes: self.options.max_body_bytes,
            };
            self.pool.spawn(move || {
                handle_connection(stream, &view, &obs, &cache, &limits);
                inflight.fetch_sub(1, Ordering::AcqRel);
            });
        }
        Ok(())
    }
}

/// Serves requests off one connection until the peer asks to close (or
/// closes), the read deadline fires, the per-connection request cap is
/// reached, or a request fails to parse. Every request is accounted into
/// `obs` (endpoint counter, latency, byte totals); the connection itself
/// is accounted on the way out (keep-alive reuse).
#[cfg(not(unix))]
fn handle_connection(
    mut stream: TcpStream,
    view: &StoreView,
    obs: &ServeTelemetry,
    cache: &ResponseCache,
    limits: &RequestLimits,
) {
    let mut served = 0;
    while served < MAX_REQUESTS_PER_CONNECTION {
        match read_request(&mut stream, limits) {
            Ok(Some(request)) => {
                served += 1;
                // honor the client's wish, but advertise close on the
                // connection's last allowed request
                let keep_alive = request.keep_alive && served < MAX_REQUESTS_PER_CONNECTION;
                let handling = Instant::now();
                let response = route(&request, view, obs, cache);
                let written = response.write_to(&mut stream, keep_alive);
                obs.record_request(
                    &request.path,
                    response.status,
                    handling.elapsed(),
                    request.body.len(),
                    written.as_ref().copied().unwrap_or(0),
                );
                if written.is_err() || !keep_alive {
                    break; // peer gone, or an agreed close
                }
            }
            // clean end of a kept-alive connection (EOF or idle timeout)
            Ok(None) => break,
            Err(bad) => {
                // the peer may already be gone; nothing useful to do about it
                Response::error(bad.status, bad.message)
                    .write_to(&mut stream, false)
                    .ok();
                break;
            }
        }
    }
    obs.record_connection(served);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ArtifactStore;
    use std::io::{Read, Write};

    #[test]
    fn server_binds_answers_and_shuts_down() {
        let root = std::env::temp_dir().join(format!("fahana-serve-unit-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let view = StoreView::open(ArtifactStore::open(&root).unwrap()).unwrap();
        let server = Server::bind("127.0.0.1:0", view, 2).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle().unwrap();
        let runner = std::thread::spawn(move || server.run().unwrap());

        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 200 OK\r\n"), "{raw}");
        assert!(raw.contains("Connection: close"), "{raw}");
        assert!(raw.contains(r#""status":"ok""#), "{raw}");

        // a malformed request gets a 400, not a dead server
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"BOGUS\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");

        handle.shutdown();
        runner.join().unwrap();
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn oversized_header_blocks_are_rejected_not_buffered() {
        let root = std::env::temp_dir().join(format!("fahana-serve-flood-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let view = StoreView::open(ArtifactStore::open(&root).unwrap()).unwrap();
        let server = Server::bind("127.0.0.1:0", view, 2).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle().unwrap();
        let runner = std::thread::spawn(move || server.run().unwrap());

        // a header block that never terminates: the server must cut it off
        // at the head cap and answer 400 instead of buffering forever
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
        let junk = vec![b'a'; 8 * 1024];
        for _ in 0..12 {
            // the server may close mid-flood; that's the point
            if stream.write_all(&junk).is_err() {
                break;
            }
        }
        stream.shutdown(std::net::Shutdown::Write).ok();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).ok();
        assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");
        assert!(raw.contains("truncated or larger"), "{raw}");

        handle.shutdown();
        runner.join().unwrap();
        std::fs::remove_dir_all(&root).ok();
    }
}
