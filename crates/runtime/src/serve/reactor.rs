//! The serving reactor: a nonblocking readiness loop that owns every
//! accepted socket and decouples connection count from pool-worker count.
//!
//! Before this module, one connection pinned one [`ThreadPool`] worker
//! for its whole keep-alive lifetime, so concurrency was capped at
//! `--threads`. The reactor inverts that: all sockets live here in
//! nonblocking mode, idle keep-alive connections are *parked* (watched
//! for readability, costing no worker), and a connection only touches
//! the pool once a complete request is buffered — the worker routes it,
//! renders the response bytes, and hands them straight back to the
//! reactor, which writes them out with per-connection write buffers and
//! `WOULDBLOCK` re-arming. Thousands of mostly-idle connections share a
//! two-thread pool.
//!
//! Readiness comes from `epoll(7)` on Linux (via the hand-declared FFI
//! shim in [`sys`] — the workspace is offline, so no `libc` crate) with
//! a portable `poll(2)` fallback selected by
//! [`ReactorBackend`](crate::serve::ReactorBackend). Both are driven
//! level-triggered. Read timeouts are no longer `SO_RCVTIMEO` on the
//! socket: a hashed [`DeadlineWheel`] fires idle, slowloris, and
//! write-stall deadlines inside the loop, so a slow client is timed out
//! without ever occupying a worker.
//!
//! Everything user-visible from the blocking path is preserved bit for
//! bit: 503-at-the-door backpressure (still inline on the accept
//! thread), slowloris 408s with the same message text, 413/400
//! rejections from the shared incremental [`RequestParser`], the
//! generation-keyed response cache, and byte-identical response bytes
//! (`Response::to_bytes` renders the exact head `write_to` used to
//! stream). Pinned by `tests/serve_load.rs` and
//! `tests/serve_many_conns.rs`.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::pool::ThreadPool;
use crate::serve::cache::ResponseCache;
use crate::serve::http::{BadRequest, Request, RequestParser, Response};
use crate::serve::obs::{ReactorInstruments, ServeTelemetry};
use crate::serve::router::route;
use crate::serve::server::{ReactorBackend, MAX_REQUESTS_PER_CONNECTION};
use crate::serve::view::StoreView;

/// Raw system-call surface. Hand-declared because the build is offline
/// (no `libc` crate); std already links the C library, so the symbols
/// resolve. Only what the reactor needs, nothing speculative.
mod sys {
    use std::os::raw::{c_int, c_short, c_void};

    pub const F_GETFL: c_int = 3;
    pub const F_SETFL: c_int = 4;
    #[cfg(target_os = "linux")]
    pub const O_NONBLOCK: c_int = 0o4000;
    #[cfg(not(target_os = "linux"))]
    pub const O_NONBLOCK: c_int = 0x0004;

    #[cfg(target_os = "linux")]
    pub const SOL_SOCKET: c_int = 1;
    #[cfg(not(target_os = "linux"))]
    pub const SOL_SOCKET: c_int = 0xffff;
    #[cfg(target_os = "linux")]
    pub const SO_SNDBUF: c_int = 7;
    #[cfg(not(target_os = "linux"))]
    pub const SO_SNDBUF: c_int = 0x1001;

    pub const POLLIN: c_short = 0x1;
    pub const POLLOUT: c_short = 0x4;
    pub const POLLERR: c_short = 0x8;
    pub const POLLHUP: c_short = 0x10;
    pub const POLLNVAL: c_short = 0x20;

    #[cfg(target_os = "linux")]
    pub const EPOLLIN: u32 = 0x1;
    #[cfg(target_os = "linux")]
    pub const EPOLLOUT: u32 = 0x4;
    #[cfg(target_os = "linux")]
    pub const EPOLLERR: u32 = 0x8;
    #[cfg(target_os = "linux")]
    pub const EPOLLHUP: u32 = 0x10;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_ADD: c_int = 1;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_DEL: c_int = 2;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_MOD: c_int = 3;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CLOEXEC: c_int = 0o2000000;

    /// Matches the kernel's `struct epoll_event`, which is packed on
    /// x86-64 (12 bytes) but naturally aligned elsewhere.
    #[cfg(target_os = "linux")]
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    #[cfg(target_os = "linux")]
    pub type NfdsT = usize;
    #[cfg(not(target_os = "linux"))]
    pub type NfdsT = u32;

    extern "C" {
        #[cfg(target_os = "linux")]
        pub fn epoll_create1(flags: c_int) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: c_int) -> c_int;
        pub fn pipe(fds: *mut c_int) -> c_int;
        // declared non-variadic with the one argument shape we use;
        // the C calling convention tolerates this for fcntl
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
        pub fn setsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const c_void,
            optlen: u32,
        ) -> c_int;
    }
}

/// Reserved token for the self-pipe that wakes the reactor out of a
/// blocking wait (new registrations, completed responses, shutdown).
const WAKE_TOKEN: u64 = u64::MAX;

/// Bytes read per `read(2)` call while pulling request bytes.
const READ_CHUNK: usize = 16 * 1024;

/// Most reads served to one connection per readiness event, so a single
/// firehose peer cannot starve the rest of the loop. Level-triggered
/// backends re-report leftover data on the next wait.
const READS_PER_EVENT: usize = 32;

/// What a connection is registered for.
const INTEREST_READ: u8 = 0b01;
const INTEREST_WRITE: u8 = 0b10;

/// One readiness report from the backend.
#[derive(Clone, Copy, Debug)]
struct Event {
    token: u64,
    readable: bool,
    writable: bool,
}

/// The readiness source: `epoll` where available, `poll` everywhere
/// else. Both are used level-triggered so the reactor never needs to
/// drain a socket completely in one pass.
enum Backend {
    #[cfg(target_os = "linux")]
    Epoll { epfd: RawFd },
    Poll {
        /// fd → (token, interest); rebuilt into a `pollfd` array per wait.
        interest: HashMap<RawFd, (u64, u8)>,
    },
}

impl Backend {
    fn new(choice: ReactorBackend) -> io::Result<Backend> {
        match choice {
            ReactorBackend::Auto => {
                #[cfg(target_os = "linux")]
                {
                    Backend::epoll().or_else(|_| Ok(Backend::poll()))
                }
                #[cfg(not(target_os = "linux"))]
                {
                    Ok(Backend::poll())
                }
            }
            ReactorBackend::Epoll => {
                #[cfg(target_os = "linux")]
                {
                    Backend::epoll()
                }
                #[cfg(not(target_os = "linux"))]
                {
                    Err(io::Error::new(
                        io::ErrorKind::Unsupported,
                        "epoll backend requires linux; use --reactor-backend poll",
                    ))
                }
            }
            ReactorBackend::Poll => Ok(Backend::poll()),
        }
    }

    #[cfg(target_os = "linux")]
    fn epoll() -> io::Result<Backend> {
        // SAFETY: epoll_create1 takes no pointers; any flag value is
        // safe to pass and errors surface as a negative return checked
        // below.
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Backend::Epoll { epfd })
    }

    fn poll() -> Backend {
        Backend::Poll {
            interest: HashMap::new(),
        }
    }

    /// The value of the `backend` label on `fahana_serve_reactor_backend`.
    fn label(&self) -> &'static str {
        match self {
            #[cfg(target_os = "linux")]
            Backend::Epoll { .. } => "epoll",
            Backend::Poll { .. } => "poll",
        }
    }

    #[cfg(target_os = "linux")]
    fn epoll_mask(interest: u8) -> u32 {
        let mut events = 0;
        if interest & INTEREST_READ != 0 {
            events |= sys::EPOLLIN;
        }
        if interest & INTEREST_WRITE != 0 {
            events |= sys::EPOLLOUT;
        }
        events
    }

    #[cfg(target_os = "linux")]
    fn epoll_ctl(
        epfd: RawFd,
        op: std::os::raw::c_int,
        fd: RawFd,
        token: u64,
        interest: u8,
    ) -> io::Result<()> {
        let mut event = sys::EpollEvent {
            events: Backend::epoll_mask(interest),
            data: token,
        };
        // SAFETY: `event` is a live, initialized EpollEvent on this
        // stack frame for the duration of the call; the kernel copies it
        // before returning. `epfd`/`fd`/`op` are plain ints validated by
        // the kernel (errors surface as -1, checked below).
        if unsafe { sys::epoll_ctl(epfd, op, fd, &mut event) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn add(&mut self, fd: RawFd, token: u64, interest: u8) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                Backend::epoll_ctl(*epfd, sys::EPOLL_CTL_ADD, fd, token, interest)
            }
            Backend::Poll { interest: map } => {
                map.insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    fn modify(&mut self, fd: RawFd, token: u64, interest: u8) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                Backend::epoll_ctl(*epfd, sys::EPOLL_CTL_MOD, fd, token, interest)
            }
            Backend::Poll { interest: map } => {
                map.insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    fn remove(&mut self, fd: RawFd) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => Backend::epoll_ctl(*epfd, sys::EPOLL_CTL_DEL, fd, 0, 0),
            Backend::Poll { interest: map } => {
                map.remove(&fd);
                Ok(())
            }
        }
    }

    /// Blocks until readiness, a timeout, or a wake. `None` blocks
    /// indefinitely. `EINTR` returns an empty batch rather than an error.
    fn wait(&mut self, timeout: Option<Duration>, events: &mut Vec<Event>) -> io::Result<()> {
        events.clear();
        let timeout_ms = match timeout {
            None => -1,
            Some(d) => {
                // ceil so a 0.4ms residue does not become a hot 0ms spin
                let ms = (d.as_micros() as u64).div_ceil(1000);
                ms.min(i32::MAX as u64) as i32
            }
        };
        match self {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                let mut buf = [sys::EpollEvent { events: 0, data: 0 }; 256];
                // SAFETY: `buf` is a stack array of 256 initialized
                // events and `maxevents` is exactly its length, so the
                // kernel writes within bounds; only the first `n`
                // entries are read, and only when `n >= 0`.
                let n = unsafe {
                    sys::epoll_wait(*epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
                };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        return Ok(());
                    }
                    return Err(err);
                }
                for entry in buf.iter().take(n as usize) {
                    // copy out of the (possibly packed) struct by value
                    let mask = { entry.events };
                    let token = { entry.data };
                    events.push(Event {
                        token,
                        readable: mask & (sys::EPOLLIN | sys::EPOLLERR | sys::EPOLLHUP) != 0,
                        writable: mask & (sys::EPOLLOUT | sys::EPOLLERR | sys::EPOLLHUP) != 0,
                    });
                }
                Ok(())
            }
            Backend::Poll { interest } => {
                let mut fds: Vec<sys::PollFd> = interest
                    .iter()
                    .map(|(&fd, &(_, want))| {
                        let mut mask = 0;
                        if want & INTEREST_READ != 0 {
                            mask |= sys::POLLIN;
                        }
                        if want & INTEREST_WRITE != 0 {
                            mask |= sys::POLLOUT;
                        }
                        sys::PollFd {
                            fd,
                            events: mask,
                            revents: 0,
                        }
                    })
                    .collect();
                // SAFETY: `fds` is a live Vec of initialized PollFds
                // and `nfds` is exactly its length; the kernel only
                // rewrites the `revents` field of each entry in bounds.
                let n = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as sys::NfdsT, timeout_ms) };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        return Ok(());
                    }
                    return Err(err);
                }
                for pfd in &fds {
                    if pfd.revents == 0 {
                        continue;
                    }
                    let Some(&(token, _)) = interest.get(&pfd.fd) else {
                        continue;
                    };
                    // error states wake both directions so the state
                    // machine observes the failure wherever it is
                    let failed = pfd.revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0;
                    events.push(Event {
                        token,
                        readable: failed || pfd.revents & sys::POLLIN != 0,
                        writable: failed || pfd.revents & sys::POLLOUT != 0,
                    });
                }
                Ok(())
            }
        }
    }
}

impl Drop for Backend {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Backend::Epoll { epfd } = self {
            // SAFETY: `epfd` was returned by epoll_create1, is owned
            // exclusively by this Backend, and Drop runs once — no
            // double close, and nothing uses the fd afterwards.
            unsafe { sys::close(*epfd) };
        }
    }
}

/// Marks an fd nonblocking via `fcntl`.
fn set_nonblocking_fd(fd: RawFd) -> io::Result<()> {
    // SAFETY: F_GETFL takes no pointer argument; `fd` is a plain int
    // and an invalid one comes back as -1, checked below.
    let flags = unsafe { sys::fcntl(fd, sys::F_GETFL, 0) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: F_SETFL takes an int argument, not a pointer; `flags` came
    // from F_GETFL on the same fd so only O_NONBLOCK is being added.
    if unsafe { sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Shrinks (or grows) a socket's kernel send buffer. Test-facing: a
/// tiny `SO_SNDBUF` forces the partial-write path that production only
/// hits under genuine backpressure.
pub(crate) fn set_sndbuf(stream: &TcpStream, bytes: usize) -> io::Result<()> {
    let value = bytes as std::os::raw::c_int;
    // SAFETY: `value` is a live c_int on this stack frame and `optlen`
    // is exactly size_of::<c_int>(), so the kernel reads in bounds; the
    // fd is borrowed from a live TcpStream for the duration of the call.
    let rc = unsafe {
        sys::setsockopt(
            stream.as_raw_fd(),
            sys::SOL_SOCKET,
            sys::SO_SNDBUF,
            &value as *const _ as *const std::os::raw::c_void,
            std::mem::size_of::<std::os::raw::c_int>() as u32,
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// A hashed timer wheel: deadline insertion and expiry are O(1) without
/// a heap, at the cost of firing up to one granularity *late* — never
/// early, because expiry re-checks `deadline <= now` before emitting.
/// Cancellation is lazy: the owner compares the fired instant against
/// the connection's *current* deadline and drops stale fires.
struct DeadlineWheel {
    slots: Vec<Vec<(u64, Instant)>>,
    granularity: Duration,
    cursor: usize,
    origin: Instant,
    pending: usize,
}

impl DeadlineWheel {
    fn new(read_timeout: Duration, now: Instant) -> DeadlineWheel {
        // ~64 ticks across the configured timeout keeps firing error
        // under 2% of the timeout while bounding slot scans
        let granularity = (read_timeout / 64).max(Duration::from_millis(1));
        DeadlineWheel {
            slots: (0..256).map(|_| Vec::new()).collect(),
            granularity,
            cursor: 0,
            origin: now,
            pending: 0,
        }
    }

    fn insert(&mut self, token: u64, deadline: Instant, now: Instant) {
        let offset = deadline.saturating_duration_since(now);
        // ceil: the slot an entry lands in must END at-or-after the
        // deadline, otherwise the guard would delay it a full rotation
        let ticks = (offset.as_micros() as u64).div_ceil(self.granularity.as_micros().max(1) as u64)
            as usize;
        let ticks = ticks.min(self.slots.len() - 1);
        let slot = (self.cursor + ticks) % self.slots.len();
        self.slots[slot].push((token, deadline));
        self.pending += 1;
    }

    /// Appends every entry whose deadline has passed to `due`, advancing
    /// the wheel cursor to `now`. Entries parked in a passed slot whose
    /// real deadline is still ahead (they were clamped to the last slot)
    /// are re-inserted relative to `now`.
    fn collect_due(&mut self, now: Instant, due: &mut Vec<(u64, Instant)>) {
        if self.pending == 0 {
            // nothing tracked: snap the origin forward so a long idle
            // period does not replay as thousands of empty ticks
            self.origin = now;
            return;
        }
        while now.duration_since(self.origin) >= self.granularity {
            let expired = std::mem::take(&mut self.slots[self.cursor]);
            self.origin += self.granularity;
            self.cursor = (self.cursor + 1) % self.slots.len();
            for (token, deadline) in expired {
                self.pending -= 1;
                if deadline <= now {
                    due.push((token, deadline));
                } else {
                    self.insert(token, deadline, now);
                }
            }
        }
        // the current (partial) tick may already hold due entries
        let slot = &mut self.slots[self.cursor];
        let mut index = 0;
        while index < slot.len() {
            if slot[index].1 <= now {
                due.push(slot.swap_remove(index));
                self.pending -= 1;
            } else {
                index += 1;
            }
        }
    }

    /// How long the reactor may sleep before the next deadline could
    /// fire; `None` when nothing is tracked.
    fn next_timeout(&self, now: Instant) -> Option<Duration> {
        if self.pending == 0 {
            return None;
        }
        for ahead in 0..self.slots.len() {
            let slot = (self.cursor + ahead) % self.slots.len();
            if self.slots[slot].is_empty() {
                continue;
            }
            // sleep to the END of the occupied tick so its entries are
            // certainly due when the wait returns
            let end = self.origin + self.granularity * (ahead as u32 + 1);
            let sleep = end.saturating_duration_since(now);
            return Some(sleep.max(Duration::from_millis(1)));
        }
        Some(self.granularity)
    }
}

/// A response rendered by a pool worker, waiting for the reactor to
/// write it to the connection identified by `token`.
struct Completion {
    token: u64,
    bytes: Vec<u8>,
    keep_alive: bool,
}

/// State shared between the accept thread, pool workers, and the
/// reactor thread. Both queues are drained by the reactor after a wake.
pub(crate) struct ReactorShared {
    registrations: Mutex<Vec<TcpStream>>,
    completions: Mutex<Vec<Completion>>,
    wake_writer: RawFd,
    shutdown: AtomicBool,
}

impl ReactorShared {
    /// Nudges the reactor out of its wait. A full pipe (`WOULDBLOCK`)
    /// already guarantees a pending wake, so errors are ignored.
    fn wake(&self) {
        let byte = 1u8;
        // SAFETY: `byte` is a live local and the count is 1, its exact
        // size; `wake_writer` stays open for the life of ReactorShared
        // (closed only in Drop). Short or failed writes are fine: a full
        // pipe already guarantees a pending wake.
        unsafe {
            sys::write(
                self.wake_writer,
                &byte as *const u8 as *const std::os::raw::c_void,
                1,
            )
        };
    }

    fn register(&self, stream: TcpStream) {
        super::unpoison(self.registrations.lock()).push(stream);
        self.wake();
    }

    fn complete(&self, completion: Completion) {
        super::unpoison(self.completions.lock()).push(completion);
        self.wake();
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.wake();
    }
}

impl Drop for ReactorShared {
    fn drop(&mut self) {
        // SAFETY: `wake_writer` came from pipe(2) and is owned solely by
        // this ReactorShared; Drop runs once, after every `wake()` call
        // is over (they all borrow `self`), so no use-after-close.
        unsafe { sys::close(self.wake_writer) };
    }
}

/// Reactor tuning, carried over from [`ServeOptions`](crate::serve::ServeOptions).
pub(crate) struct ReactorConfig {
    pub read_timeout: Duration,
    pub max_body_bytes: usize,
    pub backend: ReactorBackend,
}

/// The accept thread's handle: register new connections, then shut the
/// loop down and reclaim the thread.
pub(crate) struct ReactorHandle {
    shared: Arc<ReactorShared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ReactorHandle {
    /// Hands an accepted (already nonblocking) connection to the loop.
    /// The reactor owns its in-flight slot from here: the slot is
    /// released when the reactor closes the connection.
    pub(crate) fn register(&self, stream: TcpStream) {
        self.shared.register(stream);
    }

    pub(crate) fn shutdown_and_join(&mut self) {
        self.shared.request_shutdown();
        if let Some(thread) = self.thread.take() {
            // A panicked reactor thread must not cascade: this runs from
            // Drop, where a second panic aborts the process. The daemon
            // is shutting down either way; surface the fact and move on.
            if thread.join().is_err() {
                eprintln!("fahana-serve: reactor thread panicked during shutdown");
            }
        }
    }
}

impl Drop for ReactorHandle {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

/// Builds the backend and self-pipe and starts the reactor thread.
pub(crate) fn spawn_reactor(
    config: ReactorConfig,
    pool: Arc<ThreadPool>,
    view: Arc<StoreView>,
    obs: Arc<ServeTelemetry>,
    cache: Arc<ResponseCache>,
    inflight: Arc<AtomicUsize>,
) -> io::Result<ReactorHandle> {
    let mut backend = Backend::new(config.backend)?;
    let mut pipe_fds = [0; 2];
    // SAFETY: pipe(2) writes exactly two ints into `pipe_fds`, a live
    // stack array of two ints; the fds are only used when it returns 0.
    if unsafe { sys::pipe(pipe_fds.as_mut_ptr()) } < 0 {
        return Err(io::Error::last_os_error());
    }
    let (wake_reader, wake_writer) = (pipe_fds[0], pipe_fds[1]);
    let wired = set_nonblocking_fd(wake_reader)
        .and_then(|()| set_nonblocking_fd(wake_writer))
        .and_then(|()| backend.add(wake_reader, WAKE_TOKEN, INTEREST_READ));
    if let Err(err) = wired {
        // SAFETY: both fds were just created by pipe(2) above, nothing
        // else has taken ownership yet (ReactorShared is not built on
        // this error path), and we return immediately after — each fd is
        // closed exactly once.
        unsafe {
            sys::close(wake_reader);
            sys::close(wake_writer);
        }
        return Err(err);
    }
    let instruments = obs.reactor_instruments(backend.label());
    let shared = Arc::new(ReactorShared {
        registrations: Mutex::new(Vec::new()),
        completions: Mutex::new(Vec::new()),
        wake_writer,
        shutdown: AtomicBool::new(false),
    });
    let now = Instant::now();
    let mut reactor = Reactor {
        backend,
        wake_reader,
        shared: Arc::clone(&shared),
        conns: HashMap::new(),
        wheel: DeadlineWheel::new(config.read_timeout, now),
        next_token: 0,
        parked: 0,
        pool,
        view,
        obs,
        cache,
        inflight,
        instruments,
        config,
    };
    let thread = std::thread::Builder::new()
        .name("fahana-reactor".into())
        .spawn(move || reactor.run())?;
    Ok(ReactorHandle {
        shared,
        thread: Some(thread),
    })
}

/// Where a connection is in its request/response cycle.
enum ConnState {
    /// Parked or mid-request: the reactor is accumulating bytes into the
    /// incremental parser.
    Reading,
    /// A complete request is on the pool; no readiness interest (errors
    /// and hangups still surface, and any of them means the peer left).
    Dispatched,
    /// Response bytes are being written; `WOULDBLOCK` re-arms for
    /// write readiness.
    Writing {
        bytes: Vec<u8>,
        written: usize,
        keep_alive: bool,
        /// True for error responses: after the write, half-close and
        /// drain the peer's unread bytes so the kernel cannot RST the
        /// response away.
        drain: bool,
    },
    /// FIN sent after an error response; discarding reads until the peer
    /// closes or the drain deadline fires.
    Draining,
}

struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    state: ConnState,
    served: usize,
    /// The wheel deadline this connection currently honors; a fired
    /// entry that no longer matches is stale and ignored.
    deadline: Option<Instant>,
    /// The peer half-closed (EOF observed) — finish the in-flight
    /// response, then close instead of re-parking.
    read_closed: bool,
    /// Counted in `fahana_serve_parked_connections`: registered but not
    /// occupying a pool worker.
    parked: bool,
}

/// What a read pass concluded, decided under the connection borrow and
/// acted on after it ends.
enum ReadOutcome {
    NeedMore,
    Dispatch(Request),
    Bad(BadRequest),
    CleanEof,
    Gone,
}

enum WriteOutcome {
    Done { keep_alive: bool, drain: bool },
    Blocked,
    Gone,
}

struct Reactor {
    backend: Backend,
    wake_reader: RawFd,
    shared: Arc<ReactorShared>,
    conns: HashMap<u64, Conn>,
    wheel: DeadlineWheel,
    next_token: u64,
    parked: usize,
    pool: Arc<ThreadPool>,
    view: Arc<StoreView>,
    obs: Arc<ServeTelemetry>,
    cache: Arc<ResponseCache>,
    inflight: Arc<AtomicUsize>,
    instruments: ReactorInstruments,
    config: ReactorConfig,
}

impl Reactor {
    fn run(&mut self) {
        let mut events = Vec::new();
        let mut due = Vec::new();
        loop {
            let timeout = self.wheel.next_timeout(Instant::now());
            if let Err(err) = self.backend.wait(timeout, &mut events) {
                // a broken readiness source is unrecoverable; closing
                // everything beats spinning on the same error forever
                eprintln!("fahana-serve: reactor wait failed: {err}");
                break;
            }
            self.instruments.wakeups.inc();
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            for event in events.drain(..) {
                self.handle_event(event);
            }
            self.adopt_registrations();
            self.apply_completions();
            let now = Instant::now();
            self.wheel.collect_due(now, &mut due);
            for (token, fired) in due.drain(..) {
                self.handle_deadline(token, fired, now);
            }
        }
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close(token);
        }
        self.backend.remove(self.wake_reader).ok();
        // SAFETY: `wake_reader` came from pipe(2), is owned solely by
        // the reactor loop, and this shutdown path runs once right
        // before the loop returns — nothing reads the fd afterwards.
        unsafe { sys::close(self.wake_reader) };
    }

    fn handle_event(&mut self, event: Event) {
        if event.token == WAKE_TOKEN {
            self.drain_wake_pipe();
            return;
        }
        let Some(conn) = self.conns.get(&event.token) else {
            return;
        };
        match conn.state {
            ConnState::Reading if event.readable => self.handle_readable(event.token),
            // interest is zero while dispatched, so any report here is an
            // unsolicited error/hangup: the peer is gone
            ConnState::Dispatched => self.close(event.token),
            ConnState::Writing { .. } if event.writable => self.progress_write(event.token),
            ConnState::Draining if event.readable => self.progress_drain(event.token),
            _ => {}
        }
    }

    fn drain_wake_pipe(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: `buf` is a live 64-byte stack array and the count
            // is exactly its length, so the kernel writes in bounds; `n`
            // bytes are never read back (the pipe is drain-only) and the
            // nonblocking fd makes the loop terminate on WOULDBLOCK.
            let n = unsafe {
                sys::read(
                    self.wake_reader,
                    buf.as_mut_ptr() as *mut std::os::raw::c_void,
                    buf.len(),
                )
            };
            if n <= 0 {
                break;
            }
        }
    }

    fn handle_readable(&mut self, token: u64) {
        let outcome = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let mut chunk = [0u8; READ_CHUNK];
            let mut outcome = ReadOutcome::NeedMore;
            for _ in 0..READS_PER_EVENT {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.read_closed = true;
                        outcome = match conn.parser.on_eof() {
                            Ok(()) => ReadOutcome::CleanEof,
                            Err(bad) => ReadOutcome::Bad(bad),
                        };
                        break;
                    }
                    Ok(n) => match conn.parser.feed(&chunk[..n]) {
                        Ok(Some(request)) => {
                            outcome = ReadOutcome::Dispatch(request);
                            break;
                        }
                        Ok(None) => {}
                        Err(bad) => {
                            outcome = ReadOutcome::Bad(bad);
                            break;
                        }
                    },
                    Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                    Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        outcome = ReadOutcome::Gone;
                        break;
                    }
                }
            }
            outcome
        };
        match outcome {
            ReadOutcome::NeedMore => {}
            ReadOutcome::Dispatch(request) => self.dispatch(token, request),
            ReadOutcome::Bad(bad) => self.answer_error(token, bad),
            ReadOutcome::CleanEof | ReadOutcome::Gone => self.close(token),
        }
    }

    /// Hands a complete request to the pool. The connection drops all
    /// readiness interest until the worker's completion comes back.
    fn dispatch(&mut self, token: u64, request: Request) {
        let (fd, keep_alive, was_parked) = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            conn.served += 1;
            // honor the client's wish, but advertise close on the
            // connection's last allowed request
            let keep_alive = request.keep_alive && conn.served < MAX_REQUESTS_PER_CONNECTION;
            conn.deadline = None;
            conn.state = ConnState::Dispatched;
            let was_parked = std::mem::replace(&mut conn.parked, false);
            (conn.stream.as_raw_fd(), keep_alive, was_parked)
        };
        if was_parked {
            self.parked -= 1;
            self.instruments.parked.set(self.parked as i64);
        }
        if self.backend.modify(fd, token, 0).is_err() {
            self.close(token);
            return;
        }
        self.instruments.dispatches.inc();
        let view = Arc::clone(&self.view);
        let obs = Arc::clone(&self.obs);
        let cache = Arc::clone(&self.cache);
        let shared = Arc::clone(&self.shared);
        self.pool.spawn(move || {
            let handling = Instant::now();
            let response = route(&request, &view, &obs, &cache);
            let bytes = response.to_bytes(keep_alive);
            obs.record_request(
                &request.path,
                response.status,
                handling.elapsed(),
                request.body.len(),
                bytes.len(),
            );
            shared.complete(Completion {
                token,
                bytes,
                keep_alive,
            });
        });
    }

    /// Queues a 4xx/408 for writing. Error responses always close, and
    /// always drain afterwards: the peer may still be mid-upload, and
    /// closing with unread bytes would RST the response away.
    fn answer_error(&mut self, token: u64, bad: BadRequest) {
        let bytes = Response::error(bad.status, bad.message).to_bytes(false);
        self.start_write(token, bytes, false, true);
    }

    fn start_write(&mut self, token: u64, bytes: Vec<u8>, keep_alive: bool, drain: bool) {
        let deadline = Instant::now() + self.config.read_timeout;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            conn.state = ConnState::Writing {
                bytes,
                written: 0,
                keep_alive,
                drain,
            };
            conn.deadline = Some(deadline);
        }
        self.wheel.insert(token, deadline, Instant::now());
        self.progress_write(token);
    }

    fn progress_write(&mut self, token: u64) {
        let (fd, outcome) = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let fd = conn.stream.as_raw_fd();
            let ConnState::Writing {
                bytes,
                written,
                keep_alive,
                drain,
            } = &mut conn.state
            else {
                return;
            };
            let outcome = loop {
                if *written >= bytes.len() {
                    break WriteOutcome::Done {
                        keep_alive: *keep_alive,
                        drain: *drain,
                    };
                }
                match conn.stream.write(&bytes[*written..]) {
                    Ok(0) => break WriteOutcome::Gone,
                    Ok(n) => *written += n,
                    Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                        break WriteOutcome::Blocked
                    }
                    Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => break WriteOutcome::Gone,
                }
            };
            (fd, outcome)
        };
        match outcome {
            WriteOutcome::Done { keep_alive, drain } => self.finish_write(token, keep_alive, drain),
            WriteOutcome::Blocked => {
                self.instruments.partial_writes.inc();
                if self.backend.modify(fd, token, INTEREST_WRITE).is_err() {
                    self.close(token);
                }
            }
            WriteOutcome::Gone => self.close(token),
        }
    }

    fn finish_write(&mut self, token: u64, keep_alive: bool, drain: bool) {
        let now = Instant::now();
        let deadline = now + self.config.read_timeout;
        enum Next {
            Close,
            Drain(RawFd),
            Park(RawFd),
            Pipelined(Request),
            Malformed(BadRequest),
        }
        let next = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if drain {
                if conn.read_closed {
                    Next::Close
                } else {
                    conn.state = ConnState::Draining;
                    conn.deadline = Some(deadline);
                    conn.stream.shutdown(std::net::Shutdown::Write).ok();
                    Next::Drain(conn.stream.as_raw_fd())
                }
            } else if !keep_alive || conn.read_closed {
                Next::Close
            } else {
                conn.state = ConnState::Reading;
                // a pipelined peer may have sent the next request while
                // this response was in flight — already in the parser
                match conn.parser.advance() {
                    Ok(Some(request)) => Next::Pipelined(request),
                    Err(bad) => Next::Malformed(bad),
                    Ok(None) => {
                        conn.deadline = Some(deadline);
                        if !conn.parked {
                            conn.parked = true;
                        }
                        Next::Park(conn.stream.as_raw_fd())
                    }
                }
            }
        };
        match next {
            Next::Close => self.close(token),
            Next::Drain(fd) => {
                self.wheel.insert(token, deadline, now);
                if self.backend.modify(fd, token, INTEREST_READ).is_err() {
                    self.close(token);
                } else {
                    // the peer may already have buffered bytes to discard
                    self.progress_drain(token);
                }
            }
            Next::Park(fd) => {
                self.parked += 1;
                self.instruments.parked.set(self.parked as i64);
                self.wheel.insert(token, deadline, now);
                if self.backend.modify(fd, token, INTEREST_READ).is_err() {
                    self.close(token);
                }
            }
            Next::Pipelined(request) => {
                // restore interest bookkeeping before re-dispatching so
                // the parked gauge stays balanced
                self.dispatch(token, request);
            }
            Next::Malformed(bad) => self.answer_error(token, bad),
        }
    }

    /// Discards post-error upload bytes until EOF (or the deadline
    /// closes the connection from above).
    fn progress_drain(&mut self, token: u64) {
        let done = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let mut chunk = [0u8; READ_CHUNK];
            let mut done = false;
            for _ in 0..READS_PER_EVENT {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        done = true;
                        break;
                    }
                    Ok(_) => {}
                    Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                    Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        done = true;
                        break;
                    }
                }
            }
            done
        };
        if done {
            self.close(token);
        }
    }

    fn handle_deadline(&mut self, token: u64, fired: Instant, now: Instant) {
        enum Expiry {
            CloseQuiet(&'static str),
            Slowloris(BadRequest),
        }
        let expiry = {
            let Some(conn) = self.conns.get(&token) else {
                return;
            };
            // stale wheel entries: the deadline was re-armed or cleared
            // after this entry was inserted
            match conn.deadline {
                Some(deadline) if deadline == fired && deadline <= now => {}
                _ => return,
            }
            match &conn.state {
                ConnState::Reading if conn.parser.is_empty() => Expiry::CloseQuiet("idle"),
                ConnState::Reading => Expiry::Slowloris(BadRequest::timeout(format!(
                    "{} still incomplete at the read deadline",
                    conn.parser.phase()
                ))),
                ConnState::Writing { .. } => Expiry::CloseQuiet("write_stall"),
                ConnState::Draining => Expiry::CloseQuiet("drain"),
                // dispatched connections carry no deadline
                ConnState::Dispatched => return,
            }
        };
        match expiry {
            Expiry::CloseQuiet(kind) => {
                self.obs.record_deadline_expiry(kind);
                self.close(token);
            }
            Expiry::Slowloris(bad) => {
                self.obs.record_deadline_expiry("slowloris");
                self.answer_error(token, bad);
            }
        }
    }

    fn adopt_registrations(&mut self) {
        let streams: Vec<TcpStream> = {
            let mut queue = super::unpoison(self.shared.registrations.lock());
            queue.drain(..).collect()
        };
        let now = Instant::now();
        for stream in streams {
            let token = self.next_token;
            self.next_token += 1;
            let fd = stream.as_raw_fd();
            if self.backend.add(fd, token, INTEREST_READ).is_err() {
                // could not watch it: give the in-flight slot back and
                // count the failure like an accept error
                self.inflight.fetch_sub(1, Ordering::AcqRel);
                self.obs.record_accept_error();
                continue;
            }
            let deadline = now + self.config.read_timeout;
            self.conns.insert(
                token,
                Conn {
                    stream,
                    parser: RequestParser::new(self.config.max_body_bytes),
                    state: ConnState::Reading,
                    served: 0,
                    deadline: Some(deadline),
                    read_closed: false,
                    parked: true,
                },
            );
            self.parked += 1;
            self.instruments.parked.set(self.parked as i64);
            self.wheel.insert(token, deadline, now);
            // any bytes that raced ahead of registration are reported by
            // the next level-triggered wait; no manual kick needed
        }
    }

    fn apply_completions(&mut self) {
        let completions: Vec<Completion> = {
            let mut queue = super::unpoison(self.shared.completions.lock());
            queue.drain(..).collect()
        };
        for completion in completions {
            // the connection may have hung up while the worker ran
            if !self.conns.contains_key(&completion.token) {
                continue;
            }
            self.start_write(
                completion.token,
                completion.bytes,
                completion.keep_alive,
                false,
            );
        }
    }

    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            if conn.parked {
                self.parked -= 1;
                self.instruments.parked.set(self.parked as i64);
            }
            self.backend.remove(conn.stream.as_raw_fd()).ok();
            // release the in-flight slot BEFORE the socket drops: a
            // waiting client must never see its next connection 503'd by
            // a slot this already-answered connection still holds
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            self.obs.record_connection(conn.served);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn wheel_never_fires_early_and_fires_soon_after() {
        let now = Instant::now();
        let mut wheel = DeadlineWheel::new(Duration::from_millis(640), now);
        assert_eq!(wheel.granularity, Duration::from_millis(10));
        let soon = now + Duration::from_millis(25);
        let far = now + Duration::from_secs(30);
        wheel.insert(1, soon, now);
        wheel.insert(2, far, now);

        let mut due = Vec::new();
        wheel.collect_due(now, &mut due);
        assert!(due.is_empty(), "fired {}ms early", 25);

        // just before the first deadline: still nothing
        wheel.collect_due(now + Duration::from_millis(24), &mut due);
        assert!(due.is_empty(), "fired before the deadline: {due:?}");

        // after it: exactly token 1, carrying its original instant
        wheel.collect_due(now + Duration::from_millis(41), &mut due);
        assert_eq!(due.len(), 1, "{due:?}");
        assert_eq!(due[0].0, 1);
        assert_eq!(due[0].1, soon);
        assert_eq!(wheel.pending, 1);

        // the far deadline survives cursor rotation (clamped re-insert)
        due.clear();
        wheel.collect_due(now + Duration::from_secs(3), &mut due);
        assert!(due.is_empty(), "far deadline fired early: {due:?}");
        assert_eq!(wheel.pending, 1);
    }

    #[test]
    fn wheel_next_timeout_targets_first_occupied_slot() {
        let now = Instant::now();
        let mut wheel = DeadlineWheel::new(Duration::from_millis(640), now);
        assert!(
            wheel.next_timeout(now).is_none(),
            "idle wheel must not tick"
        );
        wheel.insert(7, now + Duration::from_millis(35), now);
        let sleep = wheel.next_timeout(now).unwrap();
        // tick end covering 35ms at 10ms granularity is 40ms out
        assert!(
            sleep >= Duration::from_millis(35) && sleep <= Duration::from_millis(50),
            "{sleep:?}"
        );
    }

    #[test]
    fn poll_backend_reports_readable_with_token() {
        let mut backend = Backend::poll();
        assert_eq!(backend.label(), "poll");
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        backend
            .add(server_side.as_raw_fd(), 42, INTEREST_READ)
            .unwrap();

        let mut events = Vec::new();
        backend
            .wait(Some(Duration::from_millis(10)), &mut events)
            .unwrap();
        assert!(events.is_empty(), "readable before any bytes: {events:?}");

        client.write_all(b"ping").unwrap();
        backend
            .wait(Some(Duration::from_secs(2)), &mut events)
            .unwrap();
        assert_eq!(events.len(), 1, "{events:?}");
        assert_eq!(events[0].token, 42);
        assert!(events[0].readable);

        backend.remove(server_side.as_raw_fd()).unwrap();
        backend
            .wait(Some(Duration::from_millis(10)), &mut events)
            .unwrap();
        assert!(events.is_empty(), "removed fd still reported: {events:?}");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_backend_reports_readable_with_token() {
        let mut backend = Backend::epoll().unwrap();
        assert_eq!(backend.label(), "epoll");
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        backend
            .add(server_side.as_raw_fd(), 7, INTEREST_READ)
            .unwrap();

        let mut events = Vec::new();
        client.write_all(b"ping").unwrap();
        backend
            .wait(Some(Duration::from_secs(2)), &mut events)
            .unwrap();
        assert_eq!(events.len(), 1, "{events:?}");
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // interest 0 suppresses plain readability (hangups still surface)
        backend.modify(server_side.as_raw_fd(), 7, 0).unwrap();
        backend
            .wait(Some(Duration::from_millis(20)), &mut events)
            .unwrap();
        assert!(events.is_empty(), "interest 0 still readable: {events:?}");
    }
}
