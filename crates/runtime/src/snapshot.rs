//! Persistent, checksummed snapshots of the evaluation cache.
//!
//! A campaign's [`EvalCache`](crate::EvalCache) is the expensive part of a
//! run: every entry stands for one surrogate training/evaluation. This
//! module gives the cache a durable on-disk form so later campaigns over
//! the same architecture space warm-start instead of re-evaluating:
//!
//! * [`CacheSnapshot`] — an immutable, order-normalised copy of a cache's
//!   entries, keyed by the same 128-bit fingerprints the live cache uses
//!   (evaluator fingerprint × architecture structure × frozen blocks, so
//!   snapshots from differently configured evaluators merge safely without
//!   aliasing);
//! * a versioned binary codec ([`CacheSnapshot::to_bytes`] /
//!   [`CacheSnapshot::from_bytes`]) with a magic header and a trailing
//!   FNV-1a checksum — corrupted, truncated or foreign files are rejected
//!   with a typed [`SnapshotError`], never a panic;
//! * [`CacheSnapshot::merge`] — set-union of snapshots from different
//!   campaigns (first snapshot wins on conflicting values, and conflicts
//!   are counted so callers can surface fingerprint collisions);
//! * [`EvalCache::snapshot`] / [`EvalCache::absorb`] — the bridge between
//!   the live cache and its persistent form.
//!
//! The encoding is deterministic: entries are sorted by key, so two
//! caches with the same contents always produce byte-identical files.

use std::collections::BTreeMap;
use std::path::Path;

use dermsim::Group;
use evaluator::{FairnessEvaluation, FairnessReport, GroupAccuracy};

use crate::cache::{CacheKey, EvalCache};

/// Magic bytes opening every snapshot file.
const MAGIC: [u8; 8] = *b"FAHSNAP\x01";
/// Current format version.
const VERSION: u32 = 1;
/// Fixed prefix: magic + version + entry count.
const HEADER_LEN: usize = 8 + 4 + 8;
/// Trailing checksum.
const FOOTER_LEN: usize = 8;

/// Typed failure of snapshot encoding/decoding or I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Reading or writing the snapshot file failed.
    Io {
        /// The file involved.
        path: String,
        /// The underlying I/O error, formatted.
        message: String,
    },
    /// The file does not start with the snapshot magic — it is not a
    /// cache snapshot at all.
    BadMagic,
    /// The file claims a format version this build cannot read.
    UnsupportedVersion(u32),
    /// The file ends before the declared contents do.
    Truncated,
    /// The trailing checksum does not match the contents.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        stored: u64,
        /// Checksum recomputed from the contents.
        computed: u64,
    },
    /// The contents are structurally invalid (bad string, impossible
    /// length, trailing garbage).
    Malformed(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io { path, message } => write!(f, "snapshot io on {path}: {message}"),
            SnapshotError::BadMagic => write!(f, "not a cache snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(version) => {
                write!(f, "unsupported snapshot version {version}")
            }
            SnapshotError::Truncated => write!(f, "snapshot is truncated"),
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            SnapshotError::Malformed(message) => write!(f, "malformed snapshot: {message}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// What [`CacheSnapshot::merge`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MergeOutcome {
    /// Entries newly added from the other snapshot.
    pub added: usize,
    /// Keys present in both snapshots with identical evaluations.
    pub duplicates: usize,
    /// Keys present in both snapshots with *different* evaluations (the
    /// receiver's value was kept). Nonzero only on fingerprint collisions
    /// or snapshots from incompatible builds.
    pub conflicts: usize,
}

/// An immutable copy of an evaluation cache, ready to persist or merge.
///
/// Construction: [`EvalCache::snapshot`] for a live cache,
/// [`CacheSnapshot::from_entries`] for synthetic contents (tests),
/// [`CacheSnapshot::load`] / [`CacheSnapshot::from_bytes`] for persisted
/// ones.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CacheSnapshot {
    /// Sorted so encoding is deterministic.
    entries: BTreeMap<(u64, u64), FairnessEvaluation>,
}

impl CacheSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        CacheSnapshot::default()
    }

    /// Builds a snapshot from raw `(key, evaluation)` pairs. Later pairs
    /// overwrite earlier ones with the same key.
    pub fn from_entries(
        entries: impl IntoIterator<Item = ((u64, u64), FairnessEvaluation)>,
    ) -> Self {
        CacheSnapshot {
            entries: entries.into_iter().collect(),
        }
    }

    /// Number of memoised evaluations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries, in key order.
    pub fn entries(&self) -> impl Iterator<Item = (&(u64, u64), &FairnessEvaluation)> {
        self.entries.iter()
    }

    /// The GC policy hook: keeps only the entries `keep` approves and
    /// returns how many were dropped. Compaction
    /// (`fahana-campaign --cache-compact`) uses this to drop entries whose
    /// fingerprints the configured search space no longer reaches (see
    /// [`EvalCache::snapshot_touched`]); other policies — by architecture
    /// name, by evaluation contents — are one closure away.
    pub fn retain(
        &mut self,
        mut keep: impl FnMut(&(u64, u64), &FairnessEvaluation) -> bool,
    ) -> usize {
        let before = self.entries.len();
        self.entries.retain(|key, evaluation| keep(key, evaluation));
        before - self.entries.len()
    }

    /// Unions `other` into `self`. Existing entries win on key conflicts;
    /// the outcome reports how many entries were added, how many were
    /// already present, and how many conflicted.
    pub fn merge(&mut self, other: &CacheSnapshot) -> MergeOutcome {
        let mut outcome = MergeOutcome::default();
        for (key, evaluation) in &other.entries {
            match self.entries.get(key) {
                None => {
                    self.entries.insert(*key, evaluation.clone());
                    outcome.added += 1;
                }
                Some(existing) if existing == evaluation => outcome.duplicates += 1,
                Some(_) => outcome.conflicts += 1,
            }
        }
        outcome
    }

    /// Encodes the snapshot: magic, version, entry count, sorted entries,
    /// trailing FNV-1a checksum over everything before it.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.entries.len() * 96 + FOOTER_LEN);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for ((lo, hi), evaluation) in &self.entries {
            out.extend_from_slice(&lo.to_le_bytes());
            out.extend_from_slice(&hi.to_le_bytes());
            write_str(&mut out, &evaluation.architecture);
            out.extend_from_slice(&evaluation.trained_params.to_le_bytes());
            out.extend_from_slice(&evaluation.report.overall_accuracy.to_bits().to_le_bytes());
            out.extend_from_slice(&evaluation.report.unfairness.to_bits().to_le_bytes());
            out.extend_from_slice(&(evaluation.report.per_group.len() as u32).to_le_bytes());
            for group in &evaluation.report.per_group {
                out.extend_from_slice(&(group.group.0 as u64).to_le_bytes());
                out.extend_from_slice(&group.accuracy.to_bits().to_le_bytes());
                out.extend_from_slice(&(group.count as u64).to_le_bytes());
            }
        }
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decodes a snapshot produced by [`CacheSnapshot::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::BadMagic`] for foreign files,
    /// [`SnapshotError::UnsupportedVersion`] for future formats,
    /// [`SnapshotError::Truncated`] / [`SnapshotError::ChecksumMismatch`] /
    /// [`SnapshotError::Malformed`] for damaged ones.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < MAGIC.len() {
            return Err(
                if bytes.starts_with(&MAGIC[..bytes.len()]) && !bytes.is_empty() {
                    SnapshotError::Truncated
                } else {
                    SnapshotError::BadMagic
                },
            );
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if bytes.len() < HEADER_LEN + FOOTER_LEN {
            return Err(SnapshotError::Truncated);
        }
        let (contents, footer) = bytes.split_at(bytes.len() - FOOTER_LEN);
        let stored = u64::from_le_bytes(footer.try_into().expect("footer is 8 bytes"));
        let computed = fnv1a(contents);
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }

        let mut reader = Reader::new(&contents[MAGIC.len()..]);
        let version = reader.u32()?;
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let count = reader.u64()?;
        let mut entries = BTreeMap::new();
        for _ in 0..count {
            let lo = reader.u64()?;
            let hi = reader.u64()?;
            let architecture = reader.string()?;
            let trained_params = reader.u64()?;
            let overall_accuracy = f64::from_bits(reader.u64()?);
            let unfairness = f64::from_bits(reader.u64()?);
            let group_count = reader.u32()?;
            // each group record is 24 bytes; bound before allocating
            if reader.remaining() < group_count as usize * 24 {
                return Err(SnapshotError::Truncated);
            }
            let mut per_group = Vec::with_capacity(group_count as usize);
            for _ in 0..group_count {
                let group = Group(reader.u64()? as usize);
                let accuracy = f64::from_bits(reader.u64()?);
                let count = reader.u64()? as usize;
                per_group.push(GroupAccuracy {
                    group,
                    accuracy,
                    count,
                });
            }
            entries.insert(
                (lo, hi),
                FairnessEvaluation {
                    architecture,
                    report: FairnessReport {
                        overall_accuracy,
                        per_group,
                        unfairness,
                    },
                    trained_params,
                },
            );
        }
        if reader.remaining() != 0 {
            return Err(SnapshotError::Malformed(format!(
                "{} trailing bytes after the last entry",
                reader.remaining()
            )));
        }
        if entries.len() as u64 != count {
            return Err(SnapshotError::Malformed("duplicate keys".into()));
        }
        Ok(CacheSnapshot { entries })
    }

    /// Writes the encoded snapshot to `path` (atomically, via
    /// [`crate::fsutil::write_atomic`]: a uniquely named temporary sibling
    /// is renamed into place, so readers never observe a half-written
    /// snapshot and concurrent writers never collide on the staging file).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let path = path.as_ref();
        crate::fsutil::write_atomic(path, self.to_bytes()).map_err(|e| SnapshotError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })
    }

    /// Reads and decodes a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failures, plus every decoding
    /// error of [`CacheSnapshot::from_bytes`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| SnapshotError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        CacheSnapshot::from_bytes(&bytes)
    }
}

impl EvalCache {
    /// Copies the cache's current contents into a persistable snapshot.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot::from_entries(
            self.export_entries()
                .into_iter()
                .map(|(key, evaluation)| ((key.lo, key.hi), evaluation)),
        )
    }

    /// The compaction half of [`EvalCache::snapshot`]: only the entries a
    /// tracking cache actually consulted (hit or freshly evaluated) since
    /// construction — i.e. the entries the configured search space still
    /// reaches. `None` when the cache was not built with
    /// [`EvalCache::with_tracking`].
    ///
    /// The contract is *shrunken but equivalent*: warm-starting the same
    /// campaign from the touched-only snapshot serves every lookup
    /// (zero misses), exactly like the uncompacted snapshot would.
    pub fn snapshot_touched(&self) -> Option<CacheSnapshot> {
        self.touched_entries().map(|entries| {
            CacheSnapshot::from_entries(
                entries
                    .into_iter()
                    .map(|(key, evaluation)| ((key.lo, key.hi), evaluation)),
            )
        })
    }

    /// Seeds the cache from a snapshot. Entries already memoised win, so
    /// absorbing can never change what a running campaign would observe.
    /// Returns the number of entries added.
    pub fn absorb(&self, snapshot: &CacheSnapshot) -> usize {
        let added = self.import_entries(
            snapshot
                .entries
                .iter()
                .map(|(&(lo, hi), evaluation)| (CacheKey { lo, hi }, evaluation.clone())),
        );
        self.record_absorbed(added);
        added
    }
}

fn write_str(out: &mut Vec<u8>, value: &str) {
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(value.as_bytes());
}

/// Plain 64-bit FNV-1a — the snapshot checksum, also reused by
/// [`crate::shard::shard_of`] for the shard partition. Its output is part
/// of two durable contracts (on-disk checksums, worker↔coordinator cell
/// assignment, the latter pinned by literal values in `shard.rs` tests),
/// so it must never change.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash = (hash ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A bounds-checked little-endian reader; running out of bytes is
/// [`SnapshotError::Truncated`], never a panic.
struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes }
    }

    fn remaining(&self) -> usize {
        self.bytes.len()
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], SnapshotError> {
        if self.bytes.len() < len {
            return Err(SnapshotError::Truncated);
        }
        let (head, tail) = self.bytes.split_at(len);
        self.bytes = tail;
        Ok(head)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn string(&mut self) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Malformed("architecture name is not UTF-8".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archspace::zoo;
    use evaluator::{Evaluate, SurrogateEvaluator};
    use std::sync::Arc;

    use crate::cache::CachedEvaluator;

    fn sample_evaluation(name: &str, accuracy: f64) -> FairnessEvaluation {
        FairnessEvaluation {
            architecture: name.to_string(),
            report: FairnessReport {
                overall_accuracy: accuracy,
                per_group: vec![
                    GroupAccuracy {
                        group: Group(0),
                        accuracy: accuracy - 0.01,
                        count: 120,
                    },
                    GroupAccuracy {
                        group: Group(1),
                        accuracy: accuracy + 0.01,
                        count: 80,
                    },
                ],
                unfairness: 0.02,
            },
            trained_params: 1_234_567,
        }
    }

    #[test]
    fn bytes_round_trip_exactly() {
        let snapshot = CacheSnapshot::from_entries([
            ((1, 2), sample_evaluation("child-1", 0.83)),
            ((3, 4), sample_evaluation("child-2", 0.79)),
        ]);
        let bytes = snapshot.to_bytes();
        let decoded = CacheSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, snapshot);
        // deterministic encoding: same contents, same bytes
        assert_eq!(decoded.to_bytes(), bytes);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let empty = CacheSnapshot::new();
        assert!(empty.is_empty());
        let decoded = CacheSnapshot::from_bytes(&empty.to_bytes()).unwrap();
        assert_eq!(decoded.len(), 0);
    }

    #[test]
    fn foreign_files_are_bad_magic() {
        assert_eq!(
            CacheSnapshot::from_bytes(b"{\"not\":\"a snapshot\"}"),
            Err(SnapshotError::BadMagic)
        );
        assert_eq!(CacheSnapshot::from_bytes(b""), Err(SnapshotError::BadMagic));
    }

    #[test]
    fn every_truncation_is_rejected_without_panicking() {
        let bytes = CacheSnapshot::from_entries([((9, 9), sample_evaluation("t", 0.8))]).to_bytes();
        for len in 0..bytes.len() {
            let err = CacheSnapshot::from_bytes(&bytes[..len])
                .expect_err("truncated snapshot must not decode");
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated
                        | SnapshotError::ChecksumMismatch { .. }
                        | SnapshotError::BadMagic
                ),
                "unexpected error for prefix of {len} bytes: {err:?}"
            );
        }
    }

    #[test]
    fn corruption_is_detected_by_the_checksum() {
        let bytes = CacheSnapshot::from_entries([((5, 6), sample_evaluation("c", 0.8))]).to_bytes();
        // flip one bit in every byte after the magic — all must fail typed
        for index in MAGIC.len()..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[index] ^= 0x40;
            let err = CacheSnapshot::from_bytes(&corrupt)
                .expect_err("corrupted snapshot must not decode");
            assert!(
                matches!(
                    err,
                    SnapshotError::ChecksumMismatch { .. } | SnapshotError::UnsupportedVersion(_)
                ),
                "byte {index}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn future_versions_are_rejected() {
        let mut bytes = CacheSnapshot::new().to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let len = bytes.len();
        let checksum = fnv1a(&bytes[..len - FOOTER_LEN]);
        bytes[len - FOOTER_LEN..].copy_from_slice(&checksum.to_le_bytes());
        assert_eq!(
            CacheSnapshot::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn merge_unions_and_counts() {
        let mut left = CacheSnapshot::from_entries([
            ((1, 1), sample_evaluation("a", 0.8)),
            ((2, 2), sample_evaluation("b", 0.7)),
        ]);
        let right = CacheSnapshot::from_entries([
            ((2, 2), sample_evaluation("b", 0.7)),       // duplicate
            ((3, 3), sample_evaluation("c", 0.9)),       // new
            ((1, 1), sample_evaluation("a-prime", 0.8)), // conflict
        ]);
        let outcome = left.merge(&right);
        assert_eq!(
            outcome,
            MergeOutcome {
                added: 1,
                duplicates: 1,
                conflicts: 1,
            }
        );
        assert_eq!(left.len(), 3);
        // the receiver's value won the conflict
        let kept = &left.entries[&(1, 1)];
        assert_eq!(kept.architecture, "a");
    }

    #[test]
    fn retain_is_a_gc_policy_hook() {
        let mut snapshot = CacheSnapshot::from_entries([
            ((1, 1), sample_evaluation("a", 0.8)),
            ((2, 2), sample_evaluation("b", 0.7)),
            ((3, 3), sample_evaluation("c", 0.9)),
        ]);
        let dropped =
            snapshot.retain(|&(lo, _), evaluation| lo != 2 && evaluation.architecture != "c");
        assert_eq!(dropped, 2);
        assert_eq!(snapshot.len(), 1);
        assert!(snapshot.entries().all(|(_, e)| e.architecture == "a"));
        // determinism survives GC
        assert_eq!(
            CacheSnapshot::from_bytes(&snapshot.to_bytes()).unwrap(),
            snapshot
        );
    }

    #[test]
    fn snapshot_touched_keeps_consulted_entries_and_drops_stale_ones() {
        // absorbed-but-never-consulted entries are what compaction drops
        let cache = EvalCache::with_tracking();
        let stale = CacheSnapshot::from_entries([((7, 7), sample_evaluation("stale", 0.5))]);
        assert_eq!(cache.absorb(&stale), 1);
        assert_eq!(
            cache.snapshot_touched().unwrap().len(),
            0,
            "nothing consulted yet"
        );

        let cache = Arc::new(cache);
        let mut cached = CachedEvaluator::surrogate(SurrogateEvaluator::default(), cache.clone());
        cached
            .evaluate_with_frozen(&zoo::paper_fahana_small(5, 64), 1)
            .unwrap();
        let touched = cache.snapshot_touched().unwrap();
        assert_eq!(touched.len(), 1, "only the consulted entry is retained");
        assert_eq!(cache.snapshot().len(), 2, "the full snapshot keeps both");
        assert!(touched.entries().all(|(_, e)| e.architecture != "stale"));

        // untracked caches cannot answer
        assert!(EvalCache::new().snapshot_touched().is_none());
    }

    #[test]
    fn live_cache_round_trips_through_snapshot_and_absorb() {
        let cache = Arc::new(EvalCache::new());
        let mut cached = CachedEvaluator::surrogate(SurrogateEvaluator::default(), cache.clone());
        for arch in [zoo::paper_fahana_small(5, 64), zoo::mobilenet_v2(5, 64)] {
            cached.evaluate_with_frozen(&arch, 1).unwrap();
        }
        let snapshot = cache.snapshot();
        assert_eq!(snapshot.len(), 2);

        let restored = EvalCache::new();
        assert_eq!(restored.absorb(&snapshot), 2);
        assert_eq!(restored.len(), 2);
        // absorbing again adds nothing
        assert_eq!(restored.absorb(&snapshot), 0);
        assert_eq!(restored.snapshot(), snapshot);

        // a cached evaluator over the restored cache hits immediately
        let restored = Arc::new(restored);
        let mut warm = CachedEvaluator::surrogate(SurrogateEvaluator::default(), restored);
        let warm_result = warm
            .evaluate_with_frozen(&zoo::paper_fahana_small(5, 64), 1)
            .unwrap();
        assert_eq!(warm.local_stats().hits, 1);
        assert_eq!(warm.local_stats().misses, 0);
        let mut plain = SurrogateEvaluator::default();
        let fresh = plain
            .evaluate_with_frozen(&zoo::paper_fahana_small(5, 64), 1)
            .unwrap();
        assert_eq!(warm_result, fresh);
    }

    #[test]
    fn save_and_load_through_a_file() {
        let dir = std::env::temp_dir().join(format!("fahana-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.fsnap");
        let snapshot = CacheSnapshot::from_entries([((7, 8), sample_evaluation("disk", 0.81))]);
        snapshot.save(&path).unwrap();
        let loaded = CacheSnapshot::load(&path).unwrap();
        assert_eq!(loaded, snapshot);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_of_a_missing_file_is_a_typed_io_error() {
        let err = CacheSnapshot::load("/nonexistent/dir/cache.fsnap").unwrap_err();
        assert!(matches!(err, SnapshotError::Io { .. }), "{err:?}");
    }
}
