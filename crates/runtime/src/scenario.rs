//! Scenario grids and the declarative campaign configuration.
//!
//! A campaign sweeps the cartesian product of three axes the paper (and
//! the follow-up edge-AI literature) cares about:
//!
//! * **device profile** — which board the latency constraint is checked
//!   against ([`edgehw::DeviceKind`]);
//! * **reward setting** — the α/β weighting plus the `AC`/`TC` constraints
//!   of Eq. 1 ([`RewardSetting`]);
//! * **freezing** — FaHaNa's frozen-header search vs the MONAS-style full
//!   backbone.
//!
//! Grids come from [`CampaignConfig::default`] (the paper-flavoured
//! 2 devices × 2 rewards × 2 freezing grid) or from a declarative config
//! file parsed by [`CampaignConfig::parse`] — a deliberately tiny INI-like
//! format so the campaign binary needs no external parser crates.

use dermsim::DermatologyConfig;
use edgehw::{DeviceKind, DeviceProfile};
use fahana::{FahanaConfig, RewardConfig};

use crate::{Result, RuntimeError};

/// One named reward configuration of the grid.
#[derive(Debug, Clone, PartialEq)]
pub struct RewardSetting {
    /// Short name used in scenario identifiers and reports.
    pub name: String,
    /// Weight of the accuracy term (α).
    pub alpha: f64,
    /// Weight of the unfairness term (β).
    pub beta: f64,
    /// Accuracy constraint `AC` (fraction).
    pub accuracy_constraint: f64,
    /// Timing constraint `TC` in milliseconds.
    pub timing_constraint_ms: f64,
}

impl RewardSetting {
    /// The paper's balanced setting (α = β = 1).
    pub fn balanced() -> Self {
        let defaults = RewardConfig::default();
        RewardSetting {
            name: "balanced".into(),
            alpha: defaults.alpha,
            beta: defaults.beta,
            accuracy_constraint: defaults.accuracy_constraint,
            timing_constraint_ms: defaults.timing_constraint_ms,
        }
    }

    /// A fairness-heavy setting (β = 4) steering the search toward low
    /// unfairness.
    pub fn fairness_heavy() -> Self {
        RewardSetting {
            name: "fairness_heavy".into(),
            beta: 4.0,
            ..RewardSetting::balanced()
        }
    }

    /// Converts to the core reward configuration.
    pub fn to_reward_config(&self) -> RewardConfig {
        RewardConfig {
            alpha: self.alpha,
            beta: self.beta,
            accuracy_constraint: self.accuracy_constraint,
            timing_constraint_ms: self.timing_constraint_ms,
            soft_constraints: false,
        }
    }
}

/// One cell of the campaign grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Unique name within the campaign (`device/reward/freezing`).
    pub name: String,
    /// Target device.
    pub device: DeviceKind,
    /// Reward setting.
    pub reward: RewardSetting,
    /// `true` runs FaHaNa's frozen-header search; `false` the MONAS-style
    /// full-backbone search.
    pub use_freezing: bool,
}

impl Scenario {
    /// Builds the search configuration this scenario runs.
    pub fn to_fahana_config(&self, campaign: &CampaignConfig) -> FahanaConfig {
        FahanaConfig {
            episodes: campaign.episodes,
            episodes_per_update: campaign.episodes_per_update,
            reward: self.reward.to_reward_config(),
            device: DeviceProfile::for_kind(self.device),
            use_freezing: self.use_freezing,
            dataset: campaign.dataset_config(),
            seed: campaign.seed,
            ..FahanaConfig::default()
        }
    }
}

/// The declarative campaign description: shared search settings plus the
/// three grid axes.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Episodes per scenario search.
    pub episodes: usize,
    /// Episodes per controller update (also the evaluation batch size).
    pub episodes_per_update: usize,
    /// Master seed shared by every scenario (sharing the seed is what makes
    /// the evaluation cache effective across scenarios).
    pub seed: u64,
    /// Synthetic dataset size.
    pub samples: usize,
    /// Synthetic dataset image side length.
    pub image_size: usize,
    /// Worker threads (0 = size to the machine).
    pub threads: usize,
    /// Whether scenarios share the evaluation cache.
    pub use_cache: bool,
    /// Whether each search also fans its episode batches out on the pool.
    pub parallel_episodes: bool,
    /// Device axis.
    pub devices: Vec<DeviceKind>,
    /// Reward axis.
    pub rewards: Vec<RewardSetting>,
    /// Freezing axis.
    pub freezing: Vec<bool>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            episodes: 40,
            episodes_per_update: 5,
            seed: 2022,
            samples: 250,
            image_size: 8,
            threads: 0,
            use_cache: true,
            parallel_episodes: false,
            devices: vec![DeviceKind::RaspberryPi4, DeviceKind::OdroidXu4],
            rewards: vec![RewardSetting::balanced(), RewardSetting::fairness_heavy()],
            freezing: vec![true, false],
        }
    }
}

fn parse_device(value: &str) -> std::result::Result<DeviceKind, String> {
    DeviceKind::from_slug(value).ok_or_else(|| {
        format!("unknown device `{value}` (expected raspberry_pi_4, odroid_xu4 or desktop)")
    })
}

fn parse_bool(key: &str, value: &str) -> std::result::Result<bool, String> {
    match value {
        "on" | "true" | "yes" | "1" => Ok(true),
        "off" | "false" | "no" | "0" => Ok(false),
        other => Err(format!("`{key}` expects on/off, got `{other}`")),
    }
}

fn parse_number<T: std::str::FromStr>(key: &str, value: &str) -> std::result::Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("`{key}` expects a number, got `{value}`"))
}

impl CampaignConfig {
    /// The synthetic dataset configuration every grid cell shares (which
    /// is why the campaign engine generates the dataset only once).
    pub fn dataset_config(&self) -> DermatologyConfig {
        DermatologyConfig {
            samples: self.samples,
            image_size: self.image_size,
            ..DermatologyConfig::default()
        }
    }

    /// Expands the grid into its scenarios, device-major.
    pub fn expand(&self) -> Vec<Scenario> {
        let mut scenarios = Vec::with_capacity(self.scenario_count());
        for &device in &self.devices {
            for reward in &self.rewards {
                for &use_freezing in &self.freezing {
                    let mode = if use_freezing { "frozen" } else { "full" };
                    scenarios.push(Scenario {
                        name: format!("{}/{}/{mode}", device.slug(), reward.name),
                        device,
                        reward: reward.clone(),
                        use_freezing,
                    });
                }
            }
        }
        scenarios
    }

    /// Number of grid cells.
    pub fn scenario_count(&self) -> usize {
        self.devices.len() * self.rewards.len() * self.freezing.len()
    }

    /// Checks the grid is runnable.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] for an empty axis, zero
    /// episodes, an empty dataset or duplicate reward names.
    pub fn validate(&self) -> Result<()> {
        if self.episodes == 0 {
            return Err(RuntimeError::InvalidConfig(
                "episodes must be positive".into(),
            ));
        }
        if self.samples == 0 {
            return Err(RuntimeError::InvalidConfig(
                "samples must be positive".into(),
            ));
        }
        if self.devices.is_empty() {
            return Err(RuntimeError::InvalidConfig(
                "the device axis is empty".into(),
            ));
        }
        if self.rewards.is_empty() {
            return Err(RuntimeError::InvalidConfig(
                "the reward axis is empty".into(),
            ));
        }
        if self.freezing.is_empty() {
            return Err(RuntimeError::InvalidConfig(
                "the freezing axis is empty".into(),
            ));
        }
        for (index, reward) in self.rewards.iter().enumerate() {
            if self.rewards[..index].iter().any(|r| r.name == reward.name) {
                return Err(RuntimeError::InvalidConfig(format!(
                    "duplicate reward name `{}`",
                    reward.name
                )));
            }
        }
        // duplicate axis entries would produce identically named scenarios
        // whose report files overwrite each other
        for (index, &device) in self.devices.iter().enumerate() {
            if self.devices[..index].contains(&device) {
                return Err(RuntimeError::InvalidConfig(format!(
                    "duplicate device `{}` on the device axis",
                    device.slug()
                )));
            }
        }
        for (index, &mode) in self.freezing.iter().enumerate() {
            if self.freezing[..index].contains(&mode) {
                return Err(RuntimeError::InvalidConfig(format!(
                    "duplicate freezing mode `{}` on the freezing axis",
                    if mode { "on" } else { "off" }
                )));
            }
        }
        Ok(())
    }

    /// Parses the INI-like campaign format (see [`CampaignConfig::example`]).
    ///
    /// Top-level `key = value` lines override the defaults; each
    /// `[reward NAME]` section appends one reward setting (replacing the
    /// default reward axis entirely as soon as the first section appears).
    /// Lines starting with `#` are comments.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] on syntax errors, unknown
    /// keys, or a grid that fails [`CampaignConfig::validate`].
    pub fn parse(text: &str) -> Result<CampaignConfig> {
        let mut config = CampaignConfig::default();
        let mut parsed_rewards: Vec<RewardSetting> = Vec::new();
        let mut current_reward: Option<RewardSetting> = None;

        for (number, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let fail = |message: String| {
                RuntimeError::InvalidConfig(format!("line {}: {message}", number + 1))
            };
            if let Some(section) = line.strip_prefix('[') {
                let section = section
                    .strip_suffix(']')
                    .ok_or_else(|| fail("unterminated section header".into()))?
                    .trim();
                let name = section
                    .strip_prefix("reward")
                    .ok_or_else(|| fail(format!("unknown section `{section}`")))?
                    .trim();
                if name.is_empty() {
                    return Err(fail("reward sections need a name: [reward NAME]".into()));
                }
                if let Some(done) = current_reward.take() {
                    parsed_rewards.push(done);
                }
                current_reward = Some(RewardSetting {
                    name: name.to_string(),
                    ..RewardSetting::balanced()
                });
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| fail("expected `key = value`".into()))?;
            let (key, value) = (key.trim(), value.trim());
            if let Some(reward) = current_reward.as_mut() {
                match key {
                    "alpha" => reward.alpha = parse_number(key, value).map_err(&fail)?,
                    "beta" => reward.beta = parse_number(key, value).map_err(&fail)?,
                    "accuracy_constraint" => {
                        reward.accuracy_constraint = parse_number(key, value).map_err(&fail)?
                    }
                    "timing_constraint_ms" => {
                        reward.timing_constraint_ms = parse_number(key, value).map_err(&fail)?
                    }
                    other => return Err(fail(format!("unknown reward key `{other}`"))),
                }
                continue;
            }
            match key {
                "episodes" => config.episodes = parse_number(key, value).map_err(&fail)?,
                "episodes_per_update" => {
                    config.episodes_per_update = parse_number(key, value).map_err(&fail)?
                }
                "seed" => config.seed = parse_number(key, value).map_err(&fail)?,
                "samples" => config.samples = parse_number(key, value).map_err(&fail)?,
                "image_size" => config.image_size = parse_number(key, value).map_err(&fail)?,
                "threads" => config.threads = parse_number(key, value).map_err(&fail)?,
                "cache" => config.use_cache = parse_bool(key, value).map_err(&fail)?,
                "parallel_episodes" => {
                    config.parallel_episodes = parse_bool(key, value).map_err(&fail)?
                }
                "devices" => {
                    config.devices = value
                        .split(',')
                        .map(|d| parse_device(d.trim()))
                        .collect::<std::result::Result<Vec<_>, String>>()
                        .map_err(&fail)?;
                }
                "freezing" => {
                    config.freezing = value
                        .split(',')
                        .map(|f| parse_bool("freezing", f.trim()))
                        .collect::<std::result::Result<Vec<_>, String>>()
                        .map_err(&fail)?;
                }
                other => return Err(fail(format!("unknown key `{other}`"))),
            }
        }
        if let Some(done) = current_reward.take() {
            parsed_rewards.push(done);
        }
        if !parsed_rewards.is_empty() {
            config.rewards = parsed_rewards;
        }
        config.validate()?;
        Ok(config)
    }

    /// A commented example configuration (what `fahana-campaign
    /// --print-example` emits).
    pub fn example() -> &'static str {
        "\
# FaHaNa campaign configuration.
# Grid = devices x rewards x freezing; every scenario shares the search
# settings below. Unset keys keep their defaults.

episodes = 40
episodes_per_update = 5
seed = 2022
samples = 250
image_size = 8

# 0 sizes the pool to the machine
threads = 0
cache = on
parallel_episodes = off

devices = raspberry_pi_4, odroid_xu4
freezing = on, off

[reward balanced]
alpha = 1.0
beta = 1.0

[reward fairness_heavy]
alpha = 1.0
beta = 4.0
accuracy_constraint = 0.81
timing_constraint_ms = 1500
"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_has_eight_scenarios_with_unique_names() {
        let config = CampaignConfig::default();
        config.validate().unwrap();
        let scenarios = config.expand();
        assert_eq!(scenarios.len(), 8);
        assert_eq!(config.scenario_count(), 8);
        for (index, scenario) in scenarios.iter().enumerate() {
            assert!(
                scenarios[..index].iter().all(|s| s.name != scenario.name),
                "duplicate scenario name {}",
                scenario.name
            );
        }
        assert_eq!(scenarios[0].name, "raspberry_pi_4/balanced/frozen");
        assert_eq!(scenarios[7].name, "odroid_xu4/fairness_heavy/full");
    }

    #[test]
    fn example_config_round_trips_to_the_default_grid() {
        let parsed = CampaignConfig::parse(CampaignConfig::example()).unwrap();
        assert_eq!(parsed, CampaignConfig::default());
    }

    #[test]
    fn parser_overrides_and_sections_work() {
        let parsed = CampaignConfig::parse(
            "episodes = 12\nthreads = 3\ncache = off\ndevices = pi\nfreezing = on\n\
             [reward tight]\nalpha = 2.0\nbeta = 0.5\ntiming_constraint_ms = 900\n",
        )
        .unwrap();
        assert_eq!(parsed.episodes, 12);
        assert_eq!(parsed.threads, 3);
        assert!(!parsed.use_cache);
        assert_eq!(parsed.devices, vec![DeviceKind::RaspberryPi4]);
        assert_eq!(parsed.freezing, vec![true]);
        assert_eq!(parsed.rewards.len(), 1);
        let reward = &parsed.rewards[0];
        assert_eq!(reward.name, "tight");
        assert_eq!(reward.alpha, 2.0);
        assert_eq!(reward.beta, 0.5);
        assert_eq!(reward.timing_constraint_ms, 900.0);
        // unset reward keys keep the balanced defaults
        assert_eq!(reward.accuracy_constraint, 0.81);
        assert_eq!(parsed.scenario_count(), 1);
    }

    #[test]
    fn parser_rejects_bad_input_with_line_numbers() {
        for (text, needle) in [
            ("episodes = twelve", "line 1"),
            ("bogus_key = 1", "unknown key"),
            ("devices = gameboy", "unknown device"),
            ("[reward]", "need a name"),
            ("[section", "unterminated"),
            ("no equals sign here", "key = value"),
            ("[reward a]\nwat = 1", "unknown reward key"),
            ("episodes = 0", "episodes must be positive"),
            // `pi` and `raspberry_pi_4` alias the same device
            ("devices = pi, raspberry_pi_4", "duplicate device"),
            ("freezing = on, on", "duplicate freezing mode"),
            (
                "[reward a]\nalpha = 1\n[reward a]\nalpha = 2",
                "duplicate reward name",
            ),
        ] {
            let err = CampaignConfig::parse(text).unwrap_err().to_string();
            assert!(
                err.contains(needle),
                "`{text}` should fail with `{needle}`, got `{err}`"
            );
        }
    }

    #[test]
    fn scenario_builds_a_matching_search_config() {
        let campaign = CampaignConfig {
            episodes: 7,
            seed: 99,
            ..CampaignConfig::default()
        };
        let scenario = Scenario {
            name: "odroid_xu4/fairness_heavy/full".into(),
            device: DeviceKind::OdroidXu4,
            reward: RewardSetting::fairness_heavy(),
            use_freezing: false,
        };
        let config = scenario.to_fahana_config(&campaign);
        assert_eq!(config.episodes, 7);
        assert_eq!(config.seed, 99);
        assert_eq!(config.device.kind, DeviceKind::OdroidXu4);
        assert_eq!(config.reward.beta, 4.0);
        assert!(!config.use_freezing);
        assert_eq!(config.dataset.samples, campaign.samples);
    }

    #[test]
    fn validate_rejects_empty_axes() {
        let mut config = CampaignConfig::default();
        config.devices.clear();
        assert!(config.validate().is_err());
        let mut config = CampaignConfig::default();
        config.rewards.clear();
        assert!(config.validate().is_err());
        let mut config = CampaignConfig::default();
        config.freezing.clear();
        assert!(config.validate().is_err());
        let config = CampaignConfig {
            samples: 0,
            ..CampaignConfig::default()
        };
        assert!(config.validate().is_err());
    }
}
