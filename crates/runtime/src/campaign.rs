//! The campaign engine: many searches, one pool, one cache.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use edgehw::{DeviceKind, DeviceProfile, SharedBlockLatencyTable};
use evaluator::{EvalRequest, Evaluate, EvaluateBatch, FairnessEvaluation};
use fahana::{FahanaSearch, SearchOutcome};

use crate::cache::{CacheStats, CachedEvaluator, EvalCache};
use crate::pool::ThreadPool;
use crate::report::Json;
use crate::scenario::{CampaignConfig, Scenario};
use crate::telemetry::Telemetry;
use crate::{Result, RuntimeError};

/// An [`EvaluateBatch`] stage that fans each batch out across a thread
/// pool, preserving request order in its results.
///
/// Because the inner evaluator is cloned per request and every evaluator in
/// this workspace is a deterministic function of its configuration, the
/// results are bit-identical to sequential evaluation — only wall-clock
/// changes.
#[derive(Debug, Clone)]
pub struct PooledBatchEvaluator<E> {
    pool: Arc<ThreadPool>,
    evaluator: E,
}

impl<E> PooledBatchEvaluator<E> {
    /// Wraps `evaluator` so its batches run on `pool`.
    pub fn new(pool: Arc<ThreadPool>, evaluator: E) -> Self {
        PooledBatchEvaluator { pool, evaluator }
    }

    /// The wrapped evaluator.
    pub fn evaluator(&self) -> &E {
        &self.evaluator
    }
}

impl<E> EvaluateBatch for PooledBatchEvaluator<E>
where
    E: Evaluate + Clone + Send + Sync + 'static,
{
    fn evaluate_batch(
        &mut self,
        requests: &[EvalRequest],
    ) -> Vec<evaluator::Result<FairnessEvaluation>> {
        if requests.len() <= 1 {
            // nothing to fan out; skip the queueing overhead
            return self.evaluator.evaluate_batch(requests);
        }
        let evaluator = self.evaluator.clone();
        self.pool.map(requests.to_vec(), move |_, request| {
            let mut worker = evaluator.clone();
            worker.evaluate_with_frozen(&request.arch, request.frozen_blocks)
        })
    }
}

/// The result of one scenario's search.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The grid cell that ran.
    pub scenario: Scenario,
    /// The search outcome.
    pub outcome: SearchOutcome,
    /// Wall-clock time of this scenario (search construction + run).
    pub wall_clock: Duration,
    /// This scenario's evaluation-cache hits/misses (zeros when the cache
    /// is disabled).
    pub cache: CacheStats,
}

/// The result of a whole campaign.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Per-scenario results, in grid order.
    pub scenarios: Vec<ScenarioOutcome>,
    /// Aggregate evaluation-cache statistics.
    pub cache: CacheStats,
    /// Distinct architectures memoised by the cache.
    pub cache_entries: usize,
    /// End-to-end campaign wall-clock.
    pub wall_clock: Duration,
    /// Worker threads used.
    pub threads: usize,
}

/// Runs a scenario grid concurrently on a work-stealing pool, sharing the
/// evaluation cache and per-device latency tables across scenarios.
///
/// # Example
///
/// ```
/// use fahana_runtime::{CampaignConfig, CampaignEngine};
///
/// let config = CampaignConfig {
///     episodes: 4,
///     samples: 120,
///     threads: 2,
///     ..CampaignConfig::default()
/// };
/// let outcome = CampaignEngine::new(config).unwrap().run().unwrap();
/// assert_eq!(outcome.scenarios.len(), 8);
/// ```
#[derive(Debug)]
pub struct CampaignEngine {
    config: CampaignConfig,
    pool: Arc<ThreadPool>,
    telemetry: Telemetry,
}

impl CampaignEngine {
    /// Validates the configuration and spins up the worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] if the grid is not runnable.
    pub fn new(config: CampaignConfig) -> Result<Self> {
        config.validate()?;
        let pool = if config.threads == 0 {
            ThreadPool::with_default_size()
        } else {
            ThreadPool::new(config.threads)
        };
        Ok(CampaignEngine {
            config,
            pool: Arc::new(pool),
            telemetry: Telemetry::disabled(),
        })
    }

    /// The campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Attaches a telemetry bundle: per-scenario spans and campaign-level
    /// metrics are recorded through it. Telemetry is a pure side channel —
    /// attaching it never changes any outcome or artifact byte.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The engine's telemetry bundle (a disabled default unless
    /// [`CampaignEngine::set_telemetry`] was called).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Runs every scenario of the grid and collects the results in grid
    /// order.
    ///
    /// # Errors
    ///
    /// Returns the first scenario failure (scenario searches only fail on
    /// configuration-level inconsistencies, so one failure means the grid
    /// itself is bad).
    pub fn run(&self) -> Result<CampaignOutcome> {
        self.run_with_cache(Arc::new(EvalCache::new()))
    }

    /// Like [`CampaignEngine::run`], but over a caller-provided cache —
    /// the warm-start entry point: seed the cache from a persisted
    /// [`crate::CacheSnapshot`] via [`EvalCache::absorb`] first, and every
    /// evaluation already memoised is served instead of recomputed. The
    /// outcome's hit/miss statistics reflect this run only (absorbing does
    /// not touch the counters), and because cached results are
    /// bit-identical to fresh evaluations, a warm-started campaign
    /// produces exactly the outcomes a cold one would.
    ///
    /// # Errors
    ///
    /// As [`CampaignEngine::run`].
    pub fn run_with_cache(&self, cache: Arc<EvalCache>) -> Result<CampaignOutcome> {
        self.run_scenarios(self.config.expand(), cache)
    }

    /// Runs one shard's slice of the grid — the worker half of sharded
    /// execution: the scenarios that [`crate::shard::shard_of`] assigns to
    /// `shard` run here exactly as they would inside a whole-grid run,
    /// and everything else is skipped.
    ///
    /// # Errors
    ///
    /// As [`CampaignEngine::run`].
    pub fn run_shard(
        &self,
        shard: crate::ShardSpec,
        cache: Arc<EvalCache>,
    ) -> Result<CampaignOutcome> {
        let plan = crate::CampaignPlan::new(self.config.clone())?;
        self.run_scenarios(plan.slice(shard), cache)
    }

    /// Runs an explicit cell set — the rescheduling counterpart of
    /// [`CampaignEngine::run_shard`]: a fault-tolerant coordinator hands a
    /// replacement worker exactly the cells a dead shard never finished
    /// (`fahana-campaign --cells FILE`), and because every cell is a pure
    /// function of (scenario, campaign settings), the outcomes are
    /// bit-identical to the ones the original shard would have produced.
    ///
    /// # Errors
    ///
    /// As [`CampaignEngine::run`], plus [`RuntimeError::InvalidConfig`]
    /// when a name is not a plan cell or repeats
    /// ([`crate::CampaignPlan::subset`]).
    pub fn run_cells(&self, cells: &[String], cache: Arc<EvalCache>) -> Result<CampaignOutcome> {
        let plan = crate::CampaignPlan::new(self.config.clone())?;
        self.run_scenarios(plan.subset(cells)?, cache)
    }

    /// Runs an explicit scenario list (a plan slice) over a caller-provided
    /// cache. This is the execution core behind [`CampaignEngine::run`],
    /// [`CampaignEngine::run_with_cache`] and [`CampaignEngine::run_shard`]:
    /// each scenario's search is a pure function of (scenario, campaign
    /// settings), so running a slice produces bit-identical per-scenario
    /// outcomes to running the whole grid.
    ///
    /// An empty slice (a shard that owns no cells of a small grid) is
    /// valid and yields an outcome with no scenarios.
    ///
    /// # Errors
    ///
    /// As [`CampaignEngine::run`].
    pub fn run_scenarios(
        &self,
        scenarios: Vec<Scenario>,
        cache: Arc<EvalCache>,
    ) -> Result<CampaignOutcome> {
        if scenarios.is_empty() {
            // still flush, so --metrics-out carries the full catalog even
            // for a shard that owns no cells
            self.flush_campaign_telemetry(&cache, Duration::ZERO, 0);
            return Ok(CampaignOutcome {
                scenarios: Vec::new(),
                cache: cache.stats(),
                cache_entries: cache.len(),
                wall_clock: Duration::ZERO,
                threads: self.pool.threads(),
            });
        }
        // every grid cell shares samples/image_size/seed, so the synthetic
        // dataset is generated once and injected into each search
        let dataset =
            Arc::new(dermsim::DermatologyGenerator::new(self.config.dataset_config()).generate());
        let tables: HashMap<DeviceKind, SharedBlockLatencyTable> = scenarios
            .iter()
            .map(|scenario| scenario.device)
            .map(|kind| {
                (
                    kind,
                    SharedBlockLatencyTable::new(DeviceProfile::for_kind(kind)),
                )
            })
            .collect();

        // fahana-lint: allow(wall-clock) wall_clock_ms is scheduling-dependent telemetry; canonical() zeroes it before artifact comparison
        let started = Instant::now();
        let campaign_config = self.config.clone();
        let pool = Arc::clone(&self.pool);
        let shared_cache = Arc::clone(&cache);
        let telemetry = self.telemetry.clone();
        let results: Vec<Result<ScenarioOutcome>> = self.pool.map(
            scenarios
                .into_iter()
                .map(|scenario| {
                    let table = tables[&scenario.device].clone();
                    (scenario, table)
                })
                .collect(),
            move |_, (scenario, table)| {
                // time from batch submission to this job starting — the
                // scenario's wait in the pool queues
                let queue_wait = started.elapsed();
                let result = run_scenario(
                    scenario,
                    table,
                    &campaign_config,
                    Arc::clone(&dataset),
                    Arc::clone(&shared_cache),
                    Arc::clone(&pool),
                );
                if let Ok(outcome) = &result {
                    record_scenario(&telemetry, outcome, queue_wait);
                }
                result
            },
        );
        let scenarios = results.into_iter().collect::<Result<Vec<_>>>()?;
        let wall_clock = started.elapsed();
        self.flush_campaign_telemetry(&cache, wall_clock, scenarios.len());

        Ok(CampaignOutcome {
            scenarios,
            cache: cache.stats(),
            cache_entries: cache.len(),
            wall_clock,
            threads: self.pool.threads(),
        })
    }

    /// Mirrors the run's aggregate counters (cache, pool) into the metrics
    /// registry and emits the campaign-level trace event.
    fn flush_campaign_telemetry(&self, cache: &EvalCache, wall_clock: Duration, scenarios: usize) {
        let metrics = self.telemetry.metrics();
        let stats = cache.stats();
        metrics
            .counter("fahana_cache_hits_total", "evaluation cache hits")
            .set(stats.hits);
        metrics
            .counter("fahana_cache_misses_total", "evaluation cache misses")
            .set(stats.misses);
        metrics
            .counter(
                "fahana_cache_absorbed_total",
                "cache entries absorbed from snapshots (warm starts)",
            )
            .set(cache.absorbed());
        metrics
            .gauge("fahana_cache_entries", "distinct evaluations memoised")
            .set(cache.len() as i64);
        metrics
            .counter(
                "fahana_cache_lock_contended_total",
                "cache shard lock acquisitions that had to wait",
            )
            .set(cache.contended());
        metrics
            .gauge("fahana_cache_shards", "cache lock segments")
            .set(cache.shard_count() as i64);
        // per-shard series are bounded: the shard count is a small fixed
        // power of two chosen at cache construction
        for (index, shard) in cache.shard_stats().into_iter().enumerate() {
            let label = index.to_string();
            metrics
                .counter_with(
                    "fahana_cache_shard_hits_total",
                    "evaluation cache hits, by shard",
                    &[("shard", label.as_str())],
                )
                .set(shard.hits);
            metrics
                .counter_with(
                    "fahana_cache_shard_contended_total",
                    "contended lock acquisitions, by shard",
                    &[("shard", label.as_str())],
                )
                .set(shard.contended);
            metrics
                .gauge_with(
                    "fahana_cache_shard_entries",
                    "memoised evaluations, by shard",
                    &[("shard", label.as_str())],
                )
                .set(shard.entries as i64);
        }

        let pool = self.pool.stats();
        for (path, count) in [
            ("local", pool.local_pops),
            ("injector", pool.injector_pops),
            ("steal", pool.steals),
        ] {
            metrics
                .counter_with(
                    "fahana_pool_jobs_total",
                    "pool jobs executed, by scheduling path",
                    &[("path", path)],
                )
                .set(count);
        }
        metrics
            .gauge("fahana_pool_threads", "pool worker threads")
            .set(pool.threads as i64);
        metrics
            .gauge("fahana_pool_queue_depth", "jobs queued and not yet started")
            .set(self.pool.queue_depth() as i64);

        if let Some(trace) = self.telemetry.trace() {
            trace.span(
                "campaign",
                wall_clock.as_secs_f64() * 1e3,
                vec![
                    ("scenarios".into(), Json::Int(scenarios as i64)),
                    ("cache_hits".into(), Json::Int(stats.hits as i64)),
                    ("cache_misses".into(), Json::Int(stats.misses as i64)),
                    ("cache_entries".into(), Json::Int(cache.len() as i64)),
                    ("pool_steals".into(), Json::Int(pool.steals as i64)),
                    ("threads".into(), Json::Int(pool.threads as i64)),
                ],
            );
        }
    }
}

/// Records one finished scenario into the telemetry side channel: three
/// metric series plus (when tracing) a `scenario` span carrying the cache
/// ratio and evaluation rate.
fn record_scenario(telemetry: &Telemetry, outcome: &ScenarioOutcome, queue_wait: Duration) {
    let metrics = telemetry.metrics();
    metrics
        .counter("fahana_scenarios_total", "scenarios completed")
        .inc();
    metrics
        .histogram("fahana_scenario_duration_ms", "per-scenario wall-clock")
        .observe(outcome.wall_clock);
    metrics
        .histogram(
            "fahana_scenario_queue_wait_ms",
            "submit-to-start wait per scenario",
        )
        .observe(queue_wait);
    if let Some(trace) = telemetry.trace() {
        let lookups = outcome.cache.hits + outcome.cache.misses;
        let secs = outcome.wall_clock.as_secs_f64();
        let candidates_per_sec = if secs > 0.0 {
            lookups as f64 / secs
        } else {
            0.0
        };
        trace.span(
            "scenario",
            outcome.wall_clock.as_secs_f64() * 1e3,
            vec![
                ("scenario".into(), Json::str(outcome.scenario.name.clone())),
                (
                    "queue_wait_ms".into(),
                    Json::Num(queue_wait.as_secs_f64() * 1e3),
                ),
                ("cache_hits".into(), Json::Int(outcome.cache.hits as i64)),
                (
                    "cache_misses".into(),
                    Json::Int(outcome.cache.misses as i64),
                ),
                ("cache_hit_rate".into(), Json::Num(outcome.cache.hit_rate())),
                ("candidates_per_sec".into(), Json::Num(candidates_per_sec)),
            ],
        );
    }
}

/// Runs one grid cell: builds the search, wires the shared latency table,
/// picks the evaluation stage (cached? pooled?) and executes it.
fn run_scenario(
    scenario: Scenario,
    table: SharedBlockLatencyTable,
    campaign: &CampaignConfig,
    dataset: Arc<dermsim::Dataset>,
    cache: Arc<EvalCache>,
    pool: Arc<ThreadPool>,
) -> Result<ScenarioOutcome> {
    // fahana-lint: allow(wall-clock) scenario wall_clock_ms is telemetry; canonical() zeroes it before artifact comparison
    let started = Instant::now();
    let scenario_error = |err: fahana::FahanaError| RuntimeError::Scenario {
        name: scenario.name.clone(),
        message: err.to_string(),
    };

    let search_config = scenario.to_fahana_config(campaign);
    let mut search = FahanaSearch::with_dataset(search_config, &dataset).map_err(scenario_error)?;
    search.set_latency_table(table).map_err(scenario_error)?;
    let surrogate = search.surrogate().clone();

    let (outcome, cache_stats) = if campaign.use_cache {
        let cached = CachedEvaluator::surrogate(surrogate, cache);
        let outcome =
            run_search(&mut search, cached.clone(), campaign, pool).map_err(scenario_error)?;
        (outcome, cached.local_stats())
    } else {
        let outcome = run_search(&mut search, surrogate, campaign, pool).map_err(scenario_error)?;
        (outcome, CacheStats::default())
    };

    Ok(ScenarioOutcome {
        scenario,
        outcome,
        wall_clock: started.elapsed(),
        cache: cache_stats,
    })
}

/// Dispatches on episode batching: sequential evaluation inside the
/// scenario's worker, or nested fan-out on the shared pool.
fn run_search<E>(
    search: &mut FahanaSearch,
    evaluator: E,
    campaign: &CampaignConfig,
    pool: Arc<ThreadPool>,
) -> fahana::Result<SearchOutcome>
where
    E: Evaluate + Clone + Send + Sync + 'static,
{
    if campaign.parallel_episodes {
        let mut stage = PooledBatchEvaluator::new(pool, evaluator);
        search.run_with_batch_evaluator(&mut stage)
    } else {
        let mut stage = evaluator;
        search.run_with_evaluator(&mut stage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::RewardSetting;
    use evaluator::SurrogateEvaluator;
    use fahana::FahanaConfig;

    fn tiny_campaign() -> CampaignConfig {
        CampaignConfig {
            episodes: 6,
            samples: 150,
            threads: 2,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn pooled_batch_evaluator_matches_sequential_results() {
        let pool = Arc::new(ThreadPool::new(3));
        let archs = [
            archspace::zoo::paper_fahana_small(5, 64),
            archspace::zoo::mobilenet_v2(5, 64),
            archspace::zoo::paper_fahana_fair(5, 64),
        ];
        let requests: Vec<EvalRequest> = archs
            .iter()
            .map(|a| EvalRequest::new(a.clone(), 1))
            .collect();
        let mut pooled = PooledBatchEvaluator::new(pool, SurrogateEvaluator::default());
        let parallel = pooled.evaluate_batch(&requests);
        let mut sequential_eval = SurrogateEvaluator::default();
        let sequential = sequential_eval.evaluate_batch(&requests);
        assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(sequential.iter()) {
            assert_eq!(p.as_ref().unwrap(), s.as_ref().unwrap());
        }
        assert_eq!(pooled.evaluator().config().seed, 2022);
    }

    #[test]
    fn campaign_runs_the_whole_grid_in_order() {
        let config = tiny_campaign();
        let expected: Vec<String> = config.expand().into_iter().map(|s| s.name).collect();
        let engine = CampaignEngine::new(config).unwrap();
        assert_eq!(engine.threads(), 2);
        let outcome = engine.run().unwrap();
        assert_eq!(outcome.scenarios.len(), 8);
        let got: Vec<&str> = outcome
            .scenarios
            .iter()
            .map(|s| s.scenario.name.as_str())
            .collect();
        assert_eq!(got, expected.iter().map(String::as_str).collect::<Vec<_>>());
        for scenario in &outcome.scenarios {
            assert_eq!(scenario.outcome.history.len(), 6);
            assert!(scenario.wall_clock > Duration::ZERO);
        }
        assert_eq!(outcome.threads, 2);
        assert!(outcome.wall_clock > Duration::ZERO);
    }

    #[test]
    fn scenarios_sharing_a_seed_hit_the_shared_cache() {
        // 8 scenarios, 4 of which differ only by device/reward for each
        // freezing mode — their controllers walk identical decision
        // streams, so the cache must serve repeats
        let outcome = CampaignEngine::new(tiny_campaign()).unwrap().run().unwrap();
        assert!(
            outcome.cache.hits > 0,
            "expected cross-scenario cache hits, got {:?}",
            outcome.cache
        );
        assert!(outcome.cache.hit_rate() > 0.0);
        assert!(outcome.cache_entries > 0);
        let per_scenario_hits: u64 = outcome.scenarios.iter().map(|s| s.cache.hits).sum();
        let per_scenario_misses: u64 = outcome.scenarios.iter().map(|s| s.cache.misses).sum();
        assert_eq!(per_scenario_hits, outcome.cache.hits);
        assert_eq!(per_scenario_misses, outcome.cache.misses);
    }

    #[test]
    fn cache_off_zeroes_the_counters_but_not_the_outcomes() {
        let outcome = CampaignEngine::new(CampaignConfig {
            use_cache: false,
            ..tiny_campaign()
        })
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(outcome.cache, CacheStats::default());
        assert!(outcome
            .scenarios
            .iter()
            .all(|s| s.cache == CacheStats::default()));
        assert_eq!(outcome.scenarios.len(), 8);
    }

    #[test]
    fn campaign_outcome_matches_directly_run_searches() {
        let campaign = CampaignConfig {
            devices: vec![edgehw::DeviceKind::RaspberryPi4],
            rewards: vec![RewardSetting::balanced()],
            freezing: vec![true, false],
            ..tiny_campaign()
        };
        let outcome = CampaignEngine::new(campaign.clone())
            .unwrap()
            .run()
            .unwrap();
        for scenario_outcome in &outcome.scenarios {
            let direct_config: FahanaConfig = scenario_outcome.scenario.to_fahana_config(&campaign);
            let direct = FahanaSearch::new(direct_config).unwrap().run().unwrap();
            assert_eq!(
                direct.history, scenario_outcome.outcome.history,
                "campaign result for {} must equal a direct run",
                scenario_outcome.scenario.name
            );
        }
    }

    #[test]
    fn invalid_grid_is_rejected_at_construction() {
        let mut config = tiny_campaign();
        config.episodes = 0;
        assert!(matches!(
            CampaignEngine::new(config),
            Err(RuntimeError::InvalidConfig(_))
        ));
    }
}
