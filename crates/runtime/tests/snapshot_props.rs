//! Property tests for the cache-snapshot codec: arbitrary entry maps
//! survive save → load → merge, and corrupted or truncated files are
//! rejected with a typed [`SnapshotError`], never a panic.

use dermsim::Group;
use evaluator::{FairnessEvaluation, FairnessReport, GroupAccuracy};
use fahana_runtime::{CacheSnapshot, SnapshotError};
use proptest::prelude::*;

type RawEntry = ((u64, u64), (f64, f64, u64), usize);

/// Builds a deterministic evaluation from generated scalars. Group
/// accuracies are derived from the key so equal keys always imply equal
/// evaluations (as in a real cache).
fn evaluation(key: (u64, u64), scalars: (f64, f64, u64), groups: usize) -> FairnessEvaluation {
    let (accuracy, unfairness, trained_params) = scalars;
    FairnessEvaluation {
        architecture: format!("arch-{:x}-{:x}", key.0, key.1),
        report: FairnessReport {
            overall_accuracy: accuracy,
            per_group: (0..groups)
                .map(|index| GroupAccuracy {
                    group: Group(index),
                    accuracy: (accuracy + index as f64 * 0.01).min(1.0),
                    count: 50 + index * 7,
                })
                .collect(),
            unfairness,
        },
        trained_params,
    }
}

fn snapshot_from(raw: &[RawEntry]) -> CacheSnapshot {
    CacheSnapshot::from_entries(
        raw.iter()
            .map(|&(key, scalars, groups)| (key, evaluation(key, scalars, groups))),
    )
}

fn entry_strategy() -> impl Strategy<Value = Vec<RawEntry>> {
    proptest::collection::vec(
        (
            (0u64..u64::MAX, 0u64..u64::MAX),
            (0.0f64..1.0, 0.0f64..0.5, 0u64..50_000_000),
            0usize..5,
        ),
        0..25,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn prop_snapshots_survive_encode_decode(raw in entry_strategy()) {
        let snapshot = snapshot_from(&raw);
        let bytes = snapshot.to_bytes();
        let decoded = CacheSnapshot::from_bytes(&bytes).expect("must decode");
        prop_assert_eq!(&decoded, &snapshot);
        // encoding is canonical: decode → re-encode is byte-identical
        prop_assert_eq!(decoded.to_bytes(), bytes);
    }

    #[test]
    fn prop_snapshots_survive_save_load_merge(raw in entry_strategy()) {
        let snapshot = snapshot_from(&raw);
        let dir = std::env::temp_dir().join(format!("fahana-snap-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("prop.fsnap");
        snapshot.save(&path).unwrap();
        let loaded = CacheSnapshot::load(&path).unwrap();
        prop_assert_eq!(&loaded, &snapshot);

        // split into halves: merging them back reconstructs the original,
        // in either order (all shared keys carry identical evaluations)
        let left_raw: Vec<RawEntry> =
            raw.iter().copied().step_by(2).collect();
        let right_raw: Vec<RawEntry> =
            raw.iter().copied().skip(1).step_by(2).collect();
        let mut left_first = snapshot_from(&left_raw);
        left_first.merge(&snapshot_from(&right_raw));
        let mut right_first = snapshot_from(&right_raw);
        right_first.merge(&snapshot_from(&left_raw));
        prop_assert_eq!(&left_first, &snapshot);
        prop_assert_eq!(&right_first, &snapshot);

        // merging a snapshot into itself adds nothing
        let before = loaded.clone();
        let mut merged = loaded;
        let outcome = merged.merge(&before);
        prop_assert_eq!(outcome.added, 0);
        prop_assert_eq!(outcome.conflicts, 0);
        prop_assert_eq!(outcome.duplicates, before.len());
        prop_assert_eq!(&merged, &before);
    }

    #[test]
    fn prop_truncations_are_typed_errors(
        raw in entry_strategy(),
        cut_fraction in 0.0f64..1.0,
    ) {
        let bytes = snapshot_from(&raw).to_bytes();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        // any strict prefix must fail without panicking
        if cut < bytes.len() {
            let result = CacheSnapshot::from_bytes(&bytes[..cut]);
            prop_assert!(result.is_err(), "prefix of {} bytes decoded", cut);
        }
    }

    #[test]
    fn prop_corruptions_are_typed_errors(
        raw in entry_strategy(),
        position_fraction in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut bytes = snapshot_from(&raw).to_bytes();
        let position = ((bytes.len() as f64) * position_fraction) as usize % bytes.len();
        bytes[position] ^= flip;
        match CacheSnapshot::from_bytes(&bytes) {
            // every corruption must surface as a typed error…
            Err(
                SnapshotError::BadMagic
                | SnapshotError::UnsupportedVersion(_)
                | SnapshotError::Truncated
                | SnapshotError::ChecksumMismatch { .. }
                | SnapshotError::Malformed(_),
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error variant {:?}", other),
            // …a decode success would mean the checksum missed a flip
            Ok(_) => prop_assert!(false, "corrupted snapshot decoded at byte {}", position),
        }
    }
}

#[test]
fn merge_reports_conflicts_without_clobbering() {
    let key = (42, 43);
    let mut ours = CacheSnapshot::from_entries([(key, evaluation(key, (0.8, 0.1, 100), 2))]);
    let theirs = CacheSnapshot::from_entries([(key, evaluation(key, (0.9, 0.2, 200), 2))]);
    let outcome = ours.merge(&theirs);
    assert_eq!(outcome.added, 0);
    assert_eq!(outcome.duplicates, 0);
    assert_eq!(outcome.conflicts, 1);
    let (_, kept) = ours.entries().next().unwrap();
    assert_eq!(kept.report.overall_accuracy, 0.8, "receiver must win");
}
