//! Reactor scale tests: connection count and pool-worker count must be
//! independent axes. A thousand-plus parked keep-alive connections are
//! served byte-perfectly by a two-thread pool, requests dribbled in one
//! byte at a time are assembled by the incremental parser, a pipelined
//! flood through a deliberately tiny `SO_SNDBUF` exercises the
//! partial-write/re-arm path without corrupting a single response, and
//! the portable `poll(2)` backend answers byte-identically to the
//! default backend.

#![cfg(unix)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use edgehw::DeviceKind;
use fahana_runtime::serve::client_exchange;
use fahana_runtime::{
    campaign_json, ArtifactStore, CampaignConfig, CampaignEngine, ReactorBackend, RewardSetting,
    ServeOptions, Server, ServerHandle, StoreView,
};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fahana-many-conns-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn tiny_report(seed: u64) -> String {
    let outcome = CampaignEngine::new(CampaignConfig {
        episodes: 4,
        samples: 120,
        threads: 2,
        seed,
        devices: vec![DeviceKind::RaspberryPi4],
        rewards: vec![RewardSetting::balanced()],
        freezing: vec![true],
        ..CampaignConfig::default()
    })
    .unwrap()
    .run()
    .unwrap();
    campaign_json(&outcome)
}

fn start_server(
    store_root: &PathBuf,
    options: ServeOptions,
) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    let store = ArtifactStore::open(store_root).unwrap();
    let view = StoreView::open(store).unwrap();
    let server = Server::bind_with("127.0.0.1:0", view, options).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let runner = std::thread::spawn(move || server.run().unwrap());
    (addr, handle, runner)
}

/// Scrapes `/metrics` over a fresh connection and returns the value of
/// `name` (space-separated exposition line), or None if absent.
fn scrape_metric(addr: SocketAddr, name: &str) -> Option<f64> {
    let mut stream = TcpStream::connect(addr).unwrap();
    let response = client_exchange(&mut stream, "GET", "/metrics", &[]).unwrap();
    assert_eq!(response.status, 200);
    response.body.lines().find_map(|line| {
        let (metric, value) = line.split_once(' ')?;
        (metric == name).then(|| value.parse().unwrap())
    })
}

/// The tentpole claim, measured: 1024 keep-alive connections against a
/// two-thread pool. Every connection answers three byte-checked rounds,
/// and mid-soak — while all of them are idle — the parked gauge must
/// account for every single one, proving none of them holds a worker.
#[test]
fn thousand_parked_connections_on_a_two_thread_pool() {
    const CLIENT_THREADS: usize = 32;
    const CONNS_PER_THREAD: usize = 32;
    const ROUNDS: usize = 3;
    const TARGETS: [&str; 3] = ["/healthz", "/query?device=raspberry_pi_4", "/catalog"];

    let dir = temp_dir("soak");
    ArtifactStore::open(&dir)
        .unwrap()
        .ingest("base", &tiny_report(500))
        .unwrap();
    let (addr, handle, runner) = start_server(
        &dir,
        ServeOptions {
            threads: 2,
            max_inflight: 2048,
            read_timeout: Duration::from_secs(30),
            ..ServeOptions::default()
        },
    );

    // the store is static, so one reference render per target is the
    // byte-exact truth every soak response must reproduce
    let expected: Vec<String> = {
        let mut stream = TcpStream::connect(addr).unwrap();
        TARGETS
            .iter()
            .map(|target| {
                let response = client_exchange(&mut stream, "GET", target, &[]).unwrap();
                assert_eq!(response.status, 200, "{target}");
                assert!(!response.body.is_empty(), "{target}");
                response.body
            })
            .collect()
    };

    let expected = Arc::new(expected);
    let barrier = Arc::new(Barrier::new(CLIENT_THREADS + 1));
    let clients: Vec<_> = (0..CLIENT_THREADS)
        .map(|thread_index| {
            let expected = Arc::clone(&expected);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut conns: Vec<TcpStream> = (0..CONNS_PER_THREAD)
                    .map(|_| {
                        let stream = TcpStream::connect(addr).unwrap();
                        stream.set_nodelay(true).ok();
                        stream.set_read_timeout(Some(Duration::from_secs(20))).ok();
                        stream
                    })
                    .collect();
                for round in 0..ROUNDS {
                    for (conn_index, conn) in conns.iter_mut().enumerate() {
                        let pick = (thread_index + conn_index + round) % TARGETS.len();
                        let response = client_exchange(conn, "GET", TARGETS[pick], &[]).unwrap();
                        assert_eq!(response.status, 200, "{}", TARGETS[pick]);
                        assert_eq!(
                            response.body, expected[pick],
                            "byte mismatch on {} (thread {thread_index} conn {conn_index} \
                             round {round})",
                            TARGETS[pick]
                        );
                    }
                    if round == 0 {
                        // everyone idle with connections held open: the
                        // main thread scrapes the parked gauge in between
                        barrier.wait();
                        barrier.wait();
                    }
                }
                // hold the connections until every thread has finished
                // its rounds, so the population stays at full strength
                barrier.wait();
                drop(conns);
            })
        })
        .collect();

    barrier.wait();
    // responses are all consumed; give the reactor a beat to finish the
    // last few finish_write -> park transitions
    std::thread::sleep(Duration::from_millis(300));
    let parked = scrape_metric(addr, "fahana_serve_parked_connections").unwrap();
    assert!(
        parked >= (CLIENT_THREADS * CONNS_PER_THREAD) as f64,
        "expected every soak connection parked off-worker, gauge says {parked}"
    );
    barrier.wait();
    barrier.wait();

    for client in clients {
        client.join().unwrap();
    }
    let dispatched = scrape_metric(addr, "fahana_serve_reactor_dispatches_total").unwrap();
    assert!(
        dispatched >= (CLIENT_THREADS * CONNS_PER_THREAD * ROUNDS) as f64,
        "dispatch counter too low: {dispatched}"
    );
    handle.shutdown();
    runner.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// A client that dribbles its request in one byte per write (flushing
/// each) must still get the exact same answer as a well-behaved one: the
/// incremental parser assembles the request across dozens of readiness
/// events instead of a blocking read.
#[test]
fn one_byte_at_a_time_request_is_assembled_and_answered() {
    let dir = temp_dir("dribble");
    ArtifactStore::open(&dir)
        .unwrap()
        .ingest("base", &tiny_report(501))
        .unwrap();
    let (addr, handle, runner) = start_server(
        &dir,
        ServeOptions {
            threads: 2,
            read_timeout: Duration::from_secs(10),
            ..ServeOptions::default()
        },
    );

    let expected = {
        let mut stream = TcpStream::connect(addr).unwrap();
        client_exchange(&mut stream, "GET", "/query?device=raspberry_pi_4", &[])
            .unwrap()
            .body
    };

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).ok();
    let request = "GET /query?device=raspberry_pi_4 HTTP/1.1\r\nConnection: close\r\n\r\n";
    for byte in request.as_bytes() {
        stream.write_all(std::slice::from_ref(byte)).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 200 OK\r\n"), "{raw}");
    let body = raw.split("\r\n\r\n").nth(1).unwrap();
    assert_eq!(body, expected, "dribbled request changed the answer");

    handle.shutdown();
    runner.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Partial-write torture: the server's kernel send buffer is shrunk to
/// its floor (`--sndbuf 1`) and a client pipelines hundreds of requests
/// without reading a single response for a while. The write side has to
/// hit `WOULDBLOCK`, re-arm for write readiness, and resume — and every
/// one of the pipelined responses must still arrive complete and
/// parseable, the first of them read back one byte at a time.
#[test]
fn pipelined_flood_through_tiny_sndbuf_stays_intact() {
    const PIPELINED: usize = 900;

    let dir = temp_dir("sndbuf");
    ArtifactStore::open(&dir)
        .unwrap()
        .ingest("base", &tiny_report(502))
        .unwrap();
    let (addr, handle, runner) = start_server(
        &dir,
        ServeOptions {
            threads: 2,
            read_timeout: Duration::from_secs(20),
            sndbuf: Some(1), // the kernel clamps this up to its floor
            ..ServeOptions::default()
        },
    );

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(20))).ok();
    let mut flood = Vec::new();
    for index in 0..PIPELINED {
        let connection = if index + 1 == PIPELINED {
            "close"
        } else {
            "keep-alive"
        };
        flood.extend_from_slice(
            format!("GET /metrics HTTP/1.1\r\nConnection: {connection}\r\n\r\n").as_bytes(),
        );
    }
    stream.write_all(&flood).unwrap();
    // do not read anything yet: responses pile into the tiny send buffer
    // until the reactor's writes genuinely block
    std::thread::sleep(Duration::from_millis(400));

    // partial-read torture on the first response: one byte per read
    let mut raw = Vec::new();
    let mut one = [0u8; 1];
    while raw.len() < 64 {
        assert_eq!(stream.read(&mut one).unwrap(), 1, "server closed early");
        raw.push(one[0]);
    }
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8(raw).unwrap();
    let answers = text.matches("HTTP/1.1 200 OK\r\n").count();
    assert_eq!(
        answers, PIPELINED,
        "pipelined flood lost or corrupted responses"
    );
    // every response body carries the reactor gauge (registered at
    // spawn, so present from the very first scrape), i.e. none of the
    // bodies got truncated into the next head
    assert_eq!(
        text.matches("# TYPE fahana_serve_parked_connections gauge")
            .count(),
        PIPELINED
    );

    let partials = scrape_metric(addr, "fahana_serve_reactor_partial_writes_total").unwrap();
    assert!(
        partials >= 1.0,
        "the flood never exercised the WOULDBLOCK re-arm path"
    );
    handle.shutdown();
    runner.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// The portable `poll(2)` fallback must be indistinguishable on the
/// wire: same store, same requests, byte-identical bodies to the default
/// (epoll) backend, with the backend label gauge naming the code path.
#[test]
fn poll_backend_answers_byte_identically() {
    let dir = temp_dir("pollback");
    ArtifactStore::open(&dir)
        .unwrap()
        .ingest("base", &tiny_report(503))
        .unwrap();
    let (auto_addr, auto_handle, auto_runner) = start_server(
        &dir,
        ServeOptions {
            threads: 2,
            ..ServeOptions::default()
        },
    );
    let (poll_addr, poll_handle, poll_runner) = start_server(
        &dir,
        ServeOptions {
            threads: 2,
            backend: ReactorBackend::Poll,
            ..ServeOptions::default()
        },
    );

    let mut auto_conn = TcpStream::connect(auto_addr).unwrap();
    let mut poll_conn = TcpStream::connect(poll_addr).unwrap();
    for target in [
        "/healthz",
        "/query?device=raspberry_pi_4",
        "/catalog",
        "/leaderboard/raspberry_pi_4?top=3",
    ] {
        let reference = client_exchange(&mut auto_conn, "GET", target, &[]).unwrap();
        let candidate = client_exchange(&mut poll_conn, "GET", target, &[]).unwrap();
        assert_eq!(reference.status, 200, "{target}");
        assert_eq!(candidate.status, reference.status, "{target}");
        assert_eq!(
            candidate.body, reference.body,
            "poll backend diverged on {target}"
        );
    }

    let mut metrics_conn = TcpStream::connect(poll_addr).unwrap();
    let scrape = client_exchange(&mut metrics_conn, "GET", "/metrics", &[]).unwrap();
    assert!(
        scrape
            .body
            .contains("fahana_serve_reactor_backend{backend=\"poll\"} 1"),
        "poll backend not labeled in /metrics"
    );

    auto_handle.shutdown();
    poll_handle.shutdown();
    auto_runner.join().unwrap();
    poll_runner.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
