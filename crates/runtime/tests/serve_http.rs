//! End-to-end tests for the `fahana-serve` daemon: a real TCP server over
//! a real store, driven by a raw HTTP/1.1 client, pinned byte-for-byte
//! against the `fahana-query` CLI (the acceptance criterion: both go
//! through one shared query core, so their answers must be identical).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::Command;
use std::sync::OnceLock;
use std::time::Duration;

use edgehw::DeviceKind;
use fahana_runtime::{
    campaign_json, ArtifactStore, CampaignConfig, CampaignEngine, Json, RewardSetting,
    ServeOptions, Server, ServerHandle, StoreView,
};
use proptest::prelude::*;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fahana-serve-e2e-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn tiny_report(seed: u64) -> String {
    let outcome = CampaignEngine::new(CampaignConfig {
        episodes: 5,
        samples: 120,
        threads: 2,
        seed,
        devices: vec![DeviceKind::RaspberryPi4, DeviceKind::OdroidXu4],
        rewards: vec![RewardSetting::balanced()],
        freezing: vec![true],
        ..CampaignConfig::default()
    })
    .unwrap()
    .run()
    .unwrap();
    campaign_json(&outcome)
}

/// Starts a server over `store_root` on an OS-assigned port.
fn start_server(store_root: &PathBuf) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    let store = ArtifactStore::open(store_root).unwrap();
    let view = StoreView::open(store).unwrap();
    let server = Server::bind("127.0.0.1:0", view, 4).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let runner = std::thread::spawn(move || server.run().unwrap());
    (addr, handle, runner)
}

/// One raw HTTP exchange on a fresh connection (explicitly `Connection:
/// close`, so `read_to_end` sees EOF as soon as the answer is written);
/// returns (status, body).
fn http(addr: SocketAddr, method: &str, target: &str, body: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: fahana\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let raw = String::from_utf8(raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("response has a head");
    assert!(
        head.contains("Connection: close"),
        "a close request must be answered with close: {head}"
    );
    let status: u16 = head
        .split(' ')
        .nth(1)
        .expect("status line has a code")
        .parse()
        .unwrap();
    (status, body.to_string())
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    http(addr, "GET", target, b"")
}

#[test]
fn serve_answers_queries_byte_identically_to_the_cli() {
    let dir = temp_dir("parity");
    let store_root = dir.join("store");
    let store = ArtifactStore::open(&store_root).unwrap();
    store.ingest("alpha", &tiny_report(41)).unwrap();
    store.ingest("beta", &tiny_report(42)).unwrap();
    let (addr, handle, runner) = start_server(&store_root);

    let query_bin = env!("CARGO_BIN_EXE_fahana-query");
    for (cli_flags, http_target) in [
        (vec![], "/query".to_string()),
        (
            vec!["--device", "raspberry_pi_4"],
            "/query?device=raspberry_pi_4".into(),
        ),
        (
            vec![
                "--device",
                "odroid_xu4",
                "--freezing",
                "on",
                "--max-latency-ms",
                "100000",
                "--min-accuracy",
                "0.1",
            ],
            "/query?device=odroid_xu4&freezing=on&max_latency_ms=100000&min_accuracy=0.1".into(),
        ),
        (
            vec!["--max-latency-ms", "0"],
            "/query?max_latency_ms=0".into(),
        ),
    ] {
        let mut args = vec!["--store", store_root.to_str().unwrap(), "--json"];
        args.extend(cli_flags.iter());
        let output = Command::new(query_bin).args(&args).output().unwrap();
        assert!(output.status.success(), "fahana-query {args:?} failed");
        let cli_answer = String::from_utf8(output.stdout).unwrap();

        let (status, http_answer) = get(addr, &http_target);
        assert_eq!(status, 200, "{http_target}: {http_answer}");
        assert_eq!(
            http_answer,
            cli_answer.trim_end_matches('\n'),
            "daemon and CLI disagree on {http_target}"
        );
    }

    handle.shutdown();
    runner.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_covers_every_endpoint() {
    let dir = temp_dir("endpoints");
    let store_root = dir.join("store");
    let store = ArtifactStore::open(&store_root).unwrap();
    store.ingest("seeded", &tiny_report(51)).unwrap();
    let (addr, handle, runner) = start_server(&store_root);

    // healthz: alive, counts right
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    let health = Json::parse(&body).unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(health.get("campaigns").unwrap().as_i64(), Some(1));
    assert_eq!(health.get("scenarios").unwrap().as_i64(), Some(2));

    // campaigns: the summary names the ingested id
    let (status, body) = get(addr, "/campaigns");
    assert_eq!(status, 200);
    let campaigns = Json::parse(&body).unwrap();
    let list = campaigns.get("campaigns").unwrap().as_arr().unwrap();
    assert_eq!(list.len(), 1);
    assert_eq!(list[0].get("id").unwrap().as_str(), Some("seeded"));

    // catalog: byte-identical to the on-disk catalog.json
    let (status, body) = get(addr, "/catalog");
    assert_eq!(status, 200);
    let on_disk = std::fs::read_to_string(store_root.join("catalog.json")).unwrap();
    assert_eq!(body, on_disk);

    // leaderboard: ranked, truncated, device-checked
    let (status, body) = get(addr, "/leaderboard/raspberry_pi_4?top=2");
    assert_eq!(status, 200);
    let board = Json::parse(&body).unwrap();
    let entries = board.get("entries").unwrap().as_arr().unwrap();
    assert!(entries.len() <= 2);
    let rewards: Vec<f64> = entries
        .iter()
        .map(|e| e.get("reward").unwrap().as_f64().unwrap())
        .collect();
    assert!(rewards.windows(2).all(|w| w[0] >= w[1]), "{rewards:?}");
    let (status, _) = get(addr, "/leaderboard/toaster");
    assert_eq!(status, 404);

    // error surface: unknown route, bad filter, bad method
    assert_eq!(get(addr, "/nope").0, 404);
    assert_eq!(get(addr, "/query?device=toaster").0, 400);
    assert_eq!(http(addr, "DELETE", "/catalog", b"").0, 405);

    handle.shutdown();
    runner.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn keep_alive_reuses_one_connection_for_sequential_requests() {
    let dir = temp_dir("keep-alive");
    let store_root = dir.join("store");
    let store = ArtifactStore::open(&store_root).unwrap();
    store.ingest("seeded", &tiny_report(71)).unwrap();
    let (addr, handle, runner) = start_server(&store_root);

    // several GETs and an ingest burst over ONE connection — the exact
    // pattern a fahana-shard coordinator publishing into a live daemon
    // produces — using the keep-alive-aware framed client
    let mut stream = TcpStream::connect(addr).unwrap();
    let local = stream.local_addr().unwrap();

    let (status, body) =
        fahana_runtime::serve::client_roundtrip(&mut stream, "GET", "/healthz", b"").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains(r#""campaigns":1"#), "{body}");

    let report = tiny_report(72);
    let (status, body) = fahana_runtime::serve::client_roundtrip(
        &mut stream,
        "POST",
        "/ingest?id=burst-1",
        report.as_bytes(),
    )
    .unwrap();
    assert_eq!(status, 201, "{body}");
    let report = tiny_report(73);
    let (status, body) = fahana_runtime::serve::client_roundtrip(
        &mut stream,
        "POST",
        "/ingest?id=burst-2",
        report.as_bytes(),
    )
    .unwrap();
    assert_eq!(status, 201, "{body}");

    // still the same TCP connection, and it observed its own publishes
    let (status, body) =
        fahana_runtime::serve::client_roundtrip(&mut stream, "GET", "/healthz", b"").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains(r#""campaigns":3"#), "{body}");
    assert_eq!(stream.local_addr().unwrap(), local);

    // an error answer does not tear the connection down either
    let (status, _) =
        fahana_runtime::serve::client_roundtrip(&mut stream, "GET", "/nope", b"").unwrap();
    assert_eq!(status, 404);
    let (status, _) =
        fahana_runtime::serve::client_roundtrip(&mut stream, "GET", "/healthz", b"").unwrap();
    assert_eq!(status, 200);

    // `Connection: close` ends the reuse: the server answers close and
    // actually closes (the next read sees EOF)
    let head = b"GET /healthz HTTP/1.1\r\nHost: fahana\r\nConnection: close\r\n\r\n";
    stream.write_all(head).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let raw = String::from_utf8(raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    assert!(raw.contains("Connection: close"), "{raw}");

    // HTTP/1.0 defaults to close even without the header
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.0\r\nHost: fahana\r\n\r\n")
        .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let raw = String::from_utf8(raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    assert!(raw.contains("Connection: close"), "{raw}");

    handle.shutdown();
    runner.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn keep_alive_responses_advertise_it() {
    let dir = temp_dir("keep-alive-header");
    let store_root = dir.join("store");
    ArtifactStore::open(&store_root).unwrap();
    let (addr, handle, runner) = start_server(&store_root);

    // read exactly one framed response off a kept-alive connection and
    // check the header — without closing semantics, read_to_end would
    // block until the idle timeout
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: fahana\r\n\r\n")
        .unwrap();
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte).unwrap();
        head.push(byte[0]);
    }
    let head = String::from_utf8(head).unwrap();
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("Connection: keep-alive"), "{head}");

    // close our end before stopping the server: the pool worker parked in
    // read_request sees EOF immediately instead of idling out the full
    // READ_TIMEOUT during shutdown
    drop(stream);
    handle.shutdown();
    runner.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Pulls one numeric sample out of a Prometheus text body: the line that
/// starts with exactly `name_and_labels` followed by a space.
fn sample(text: &str, name_and_labels: &str) -> Option<f64> {
    text.lines()
        .find(|line| {
            line.strip_prefix(name_and_labels)
                .is_some_and(|rest| rest.starts_with(' '))
        })
        .and_then(|line| line.rsplit(' ').next())
        .and_then(|value| value.parse().ok())
}

#[test]
fn metrics_and_statusz_reflect_live_traffic() {
    let dir = temp_dir("observability");
    let store_root = dir.join("store");
    let store = ArtifactStore::open(&store_root).unwrap();
    store.ingest("seeded", &tiny_report(81)).unwrap();
    let (addr, handle, runner) = start_server(&store_root);

    // traffic: two healthz, one query, one miss
    assert_eq!(get(addr, "/healthz").0, 200);
    assert_eq!(get(addr, "/healthz").0, 200);
    assert_eq!(get(addr, "/query").0, 200);
    assert_eq!(get(addr, "/nope").0, 404);

    let (status, first) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert_eq!(
        sample(
            &first,
            r#"fahana_http_requests_total{endpoint="/healthz",status="200"}"#
        ),
        Some(2.0),
        "{first}"
    );
    assert_eq!(
        sample(
            &first,
            r#"fahana_http_requests_total{endpoint="/query",status="200"}"#
        ),
        Some(1.0)
    );
    // unknown paths collapse onto the bounded `other` label
    assert_eq!(
        sample(
            &first,
            r#"fahana_http_requests_total{endpoint="other",status="404"}"#
        ),
        Some(1.0)
    );
    // histogram plumbing: the +Inf bucket covers every /healthz request
    assert_eq!(
        sample(
            &first,
            r#"fahana_http_request_ms_bucket{endpoint="/healthz",le="+Inf"}"#
        ),
        Some(2.0),
        "{first}"
    );
    assert_eq!(
        sample(
            &first,
            r#"fahana_http_request_ms_count{endpoint="/healthz"}"#
        ),
        Some(2.0)
    );
    // each exchange above was its own Connection: close connection
    assert!(sample(&first, "fahana_http_connections_total").unwrap() >= 4.0);
    assert!(sample(&first, "fahana_http_response_bytes_total").unwrap() > 0.0);
    // pool gauges are wired into the scrape
    assert_eq!(sample(&first, "fahana_pool_threads"), Some(4.0), "{first}");

    // more traffic moves the counters and the buckets
    assert_eq!(get(addr, "/query").0, 200);
    let (_, second) = get(addr, "/metrics");
    assert_eq!(
        sample(
            &second,
            r#"fahana_http_requests_total{endpoint="/query",status="200"}"#
        ),
        Some(2.0),
        "{second}"
    );
    assert_eq!(
        sample(
            &second,
            r#"fahana_http_request_ms_bucket{endpoint="/query",le="+Inf"}"#
        ),
        Some(2.0)
    );
    // a scrape accounts itself once written: the first /metrics request
    // shows up in the second one
    assert_eq!(
        sample(
            &second,
            r#"fahana_http_requests_total{endpoint="/metrics",status="200"}"#
        ),
        Some(1.0),
        "{second}"
    );

    // /statusz: the JSON status document with per-endpoint percentiles
    let (status, body) = get(addr, "/statusz");
    assert_eq!(status, 200);
    let statusz = Json::parse(&body).unwrap();
    assert_eq!(statusz.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(statusz.get("campaigns").unwrap().as_i64(), Some(1));
    assert_eq!(statusz.get("store_generation").unwrap().as_i64(), Some(0));
    assert!(statusz.get("uptime_ms").unwrap().as_i64().unwrap() >= 0);
    let endpoints = statusz.get("endpoints").unwrap().as_arr().unwrap();
    let healthz = endpoints
        .iter()
        .find(|e| e.get("endpoint").unwrap().as_str() == Some("/healthz"))
        .expect("/healthz accounted in statusz");
    assert_eq!(healthz.get("requests").unwrap().as_i64(), Some(2));
    assert!(healthz.get("p99_ms").unwrap().as_f64().unwrap() >= 0.0);

    // keep-alive reuse is accounted when the connection ends: three
    // requests over one connection are two reuses
    let mut stream = TcpStream::connect(addr).unwrap();
    for _ in 0..3 {
        let (status, _) =
            fahana_runtime::serve::client_roundtrip(&mut stream, "GET", "/healthz", b"").unwrap();
        assert_eq!(status, 200);
    }
    drop(stream);
    // the server reaps the dropped connection asynchronously; poll
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let (_, scrape) = get(addr, "/metrics");
        if sample(&scrape, "fahana_http_keepalive_reuse_total") == Some(2.0) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "keep-alive reuse never accounted: {scrape}"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // an ingest bumps the store generation both renderings report
    let report = tiny_report(82);
    assert_eq!(
        http(addr, "POST", "/ingest?id=bump", report.as_bytes()).0,
        201
    );
    let (_, body) = get(addr, "/statusz");
    assert_eq!(
        Json::parse(&body)
            .unwrap()
            .get("store_generation")
            .unwrap()
            .as_i64(),
        Some(1),
        "{body}"
    );

    handle.shutdown();
    runner.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn conflicting_duplicate_content_length_is_rejected() {
    let dir = temp_dir("dup-content-length");
    let store_root = dir.join("store");
    ArtifactStore::open(&store_root).unwrap();
    let (addr, handle, runner) = start_server(&store_root);

    // one raw exchange with a hand-built head; returns (status, raw text)
    let raw_exchange = |head: &str, body: &[u8]| -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(head.as_bytes()).unwrap();
        stream.write_all(body).unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let raw = String::from_utf8(raw).unwrap();
        let status: u16 = raw.split(' ').nth(1).unwrap().parse().unwrap();
        (status, raw)
    };

    // duplicate Content-Length headers that disagree: classic request
    // smuggling shape (one framing per parser) — must be 400, and the
    // larger length must not make the server wait for a phantom body
    let (status, raw) = raw_exchange(
        "POST /ingest?id=smuggled HTTP/1.1\r\nHost: fahana\r\n\
         Content-Length: 4\r\nContent-Length: 9999\r\nConnection: close\r\n\r\n",
        b"{}{}",
    );
    assert_eq!(status, 400, "{raw}");
    assert!(raw.contains("conflicting Content-Length"), "{raw}");

    // order must not matter either
    let (status, _) = raw_exchange(
        "GET /healthz HTTP/1.1\r\nHost: fahana\r\n\
         Content-Length: 9999\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        b"",
    );
    assert_eq!(status, 400);

    // identical duplicates are harmless (one unambiguous framing): the
    // request is served normally
    let (status, raw) = raw_exchange(
        "GET /healthz HTTP/1.1\r\nHost: fahana\r\n\
         Content-Length: 0\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        b"",
    );
    assert_eq!(status, 200, "{raw}");
    assert!(raw.contains(r#""status":"ok""#), "{raw}");

    handle.shutdown();
    runner.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_ingests_live_without_restart() {
    let dir = temp_dir("live-ingest");
    let store_root = dir.join("store");
    let store = ArtifactStore::open(&store_root).unwrap();
    store.ingest("first", &tiny_report(61)).unwrap();
    let (addr, handle, runner) = start_server(&store_root);

    let (_, before) = get(addr, "/query");
    let before = Json::parse(&before).unwrap();
    assert_eq!(before.get("campaigns_consulted").unwrap().as_i64(), Some(1));

    // publish a new campaign over the wire
    let report = tiny_report(62);
    let (status, body) = http(addr, "POST", "/ingest?id=second", report.as_bytes());
    assert_eq!(status, 201, "{body}");
    let stored = Json::parse(&body).unwrap();
    assert_eq!(stored.get("id").unwrap().as_str(), Some("second"));

    // no restart: the very next query consults both campaigns
    let (_, after) = get(addr, "/query");
    let after = Json::parse(&after).unwrap();
    assert_eq!(after.get("campaigns_consulted").unwrap().as_i64(), Some(2));

    // the artifact is durable and the catalog was rebuilt atomically
    assert!(store_root.join("artifacts/second.json").exists());
    let catalog = std::fs::read_to_string(store_root.join("catalog.json")).unwrap();
    assert_eq!(
        Json::parse(&catalog)
            .unwrap()
            .get("campaigns")
            .unwrap()
            .as_arr()
            .unwrap()
            .len(),
        2
    );

    // duplicate id → 409; garbage body → 400; store untouched
    assert_eq!(
        http(addr, "POST", "/ingest?id=second", report.as_bytes()).0,
        409
    );
    assert_eq!(http(addr, "POST", "/ingest?id=third", b"not json").0, 400);
    let (_, health) = get(addr, "/healthz");
    assert_eq!(
        Json::parse(&health)
            .unwrap()
            .get("campaigns")
            .unwrap()
            .as_i64(),
        Some(2)
    );

    handle.shutdown();
    runner.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Fuzzed request handling: whatever bytes arrive, the answer is a clean
// 2xx/4xx or a quiet close — never a panic, never a hang, never a 5xx.
// ---------------------------------------------------------------------------

/// One long-lived server shared by every fuzz case (booting a store per
/// case would dominate the run). Small body cap so oversized declared
/// lengths are reachable; the process teardown reaps it.
fn fuzz_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let store_root = temp_dir("fuzz").join("store");
        let store = ArtifactStore::open(&store_root).unwrap();
        store.ingest("seeded", &tiny_report(91)).unwrap();
        let view = StoreView::open(ArtifactStore::open(&store_root).unwrap()).unwrap();
        let server = Server::bind_with(
            "127.0.0.1:0",
            view,
            ServeOptions {
                threads: 4,
                max_body_bytes: 4096,
                read_timeout: Duration::from_secs(2),
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run().unwrap());
        addr
    })
}

/// Writes `payload`, closes the write side (so the server sees EOF, not a
/// read deadline), and returns whatever came back — possibly nothing.
/// The client-side read timeout turns a hung server into a test failure.
fn fuzz_exchange(payload: &[u8]) -> String {
    let mut stream = TcpStream::connect(fuzz_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // the server may legitimately close before reading everything
    stream.write_all(payload).ok();
    stream.shutdown(std::net::Shutdown::Write).ok();
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .expect("server must answer or close, not hang");
    String::from_utf8_lossy(&raw).into_owned()
}

fn fuzz_status(raw: &str) -> u16 {
    raw.split(' ').nth(1).unwrap_or("0").parse().unwrap_or(0)
}

/// The server is still answering — the invariant every fuzz case ends on.
fn assert_server_alive() {
    let raw = fuzz_exchange(b"GET /healthz HTTP/1.1\r\nHost: f\r\nConnection: close\r\n\r\n");
    assert_eq!(fuzz_status(&raw), 200, "server wedged: {raw}");
}

/// Applies `seed`-driven random casing to an ASCII header name.
fn scramble_case(name: &str, mut seed: u64) -> String {
    name.chars()
        .map(|c| {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if seed & (1 << 33) != 0 {
                c.to_ascii_uppercase()
            } else {
                c.to_ascii_lowercase()
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_header_casing_and_order_never_change_the_answer(
        seed in 0u64..u64::MAX,
        perm in 0usize..6,
    ) {
        // every casing and ordering of the same three headers must be a 200
        let mut headers = vec![
            format!("{}: fahana", scramble_case("Host", seed)),
            format!("{}: 0", scramble_case("Content-Length", seed ^ 0xA5A5)),
            format!("{}: close", scramble_case("Connection", seed ^ 0x5A5A)),
        ];
        // perm indexes the 3! orderings
        let third = headers.remove(perm % 3);
        let second = headers.remove(perm / 3 % 2);
        let first = headers.remove(0);
        let payload = format!(
            "GET /healthz HTTP/1.1\r\n{first}\r\n{second}\r\n{third}\r\n\r\n"
        );
        let raw = fuzz_exchange(payload.as_bytes());
        prop_assert_eq!(fuzz_status(&raw), 200, "{}", raw);
        prop_assert!(raw.contains(r#""status":"ok""#), "{}", raw);
    }

    #[test]
    fn prop_bad_content_length_is_400_or_413_never_5xx(
        value in prop::sample::select(vec![
            "abc", "-1", "", " ", "1 2", "0x10", "18446744073709551616",
            "999999999999999999999999", "4294967296", "10000",
        ]),
        duplicate in prop::sample::select(vec![false, true]),
    ) {
        let extra = if duplicate { "Content-Length: 7\r\n" } else { "" };
        let payload = format!(
            "POST /ingest?id=fuzz HTTP/1.1\r\nHost: f\r\n{extra}Content-Length: {value}\r\n\r\nbody"
        );
        let raw = fuzz_exchange(payload.as_bytes());
        let status = fuzz_status(&raw);
        // unparseable/conflicting framing → 400; parseable but over the
        // cap → 413; EOF before the declared body arrives → 400
        prop_assert!(
            matches!(status, 400 | 413),
            "Content-Length `{}` (duplicate={}) answered {}: {}", value, duplicate, status, raw
        );
        assert_server_alive();
    }

    #[test]
    fn prop_truncated_requests_close_cleanly(cut in 0usize..54) {
        let full = b"GET /query?device=raspberry_pi_4 HTTP/1.1\r\nHost: f\r\n\r\n";
        prop_assert!(cut < full.len());
        let raw = fuzz_exchange(&full[..cut]);
        let status = fuzz_status(&raw);
        // zero bytes is the idle-close path (no answer); anything partial
        // is malformed at EOF (400) or timed out (408)
        prop_assert!(
            raw.is_empty() || matches!(status, 400 | 408),
            "cut at {} answered {}: {}", cut, status, raw
        );
        assert_server_alive();
    }

    #[test]
    fn prop_pathological_query_strings_never_panic(
        junk in prop::collection::vec(32u8..127, 0..60),
    ) {
        let junk = String::from_utf8(junk).unwrap();
        let payload = format!(
            "GET /query?{junk} HTTP/1.1\r\nHost: f\r\nConnection: close\r\n\r\n"
        );
        let raw = fuzz_exchange(payload.as_bytes());
        let status = fuzz_status(&raw);
        // junk may parse as a (rejected or even valid) filter set, or
        // break the request line entirely — but never the server
        prop_assert!(
            matches!(status, 200 | 400 | 404),
            "query `{}` answered {}: {}", junk, status, raw
        );
        assert_server_alive();
    }
}
