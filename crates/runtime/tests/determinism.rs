//! Runtime determinism guarantees: the same seed must produce identical
//! `SearchOutcome`s whether a search runs serially or through the thread
//! pool, with the evaluation cache on or off, and with telemetry
//! (`--trace-out` / `--metrics-out`) attached or not.

use std::sync::Arc;

use dermsim::DermatologyConfig;
use fahana::{FahanaConfig, FahanaSearch};
use fahana_runtime::{
    CacheSnapshot, CachedEvaluator, CampaignConfig, CampaignEngine, CampaignPlan, CampaignReport,
    EvalCache, Json, PooledBatchEvaluator, ShardSpec, ThreadPool,
};

fn search_config(episodes: usize, seed: u64) -> FahanaConfig {
    FahanaConfig {
        episodes,
        seed,
        dataset: DermatologyConfig {
            samples: 200,
            image_size: 8,
            ..DermatologyConfig::default()
        },
        ..FahanaConfig::default()
    }
}

#[test]
fn pooled_batch_evaluation_is_bit_identical_to_serial() {
    let serial = FahanaSearch::new(search_config(30, 7))
        .unwrap()
        .run()
        .unwrap();

    let pool = Arc::new(ThreadPool::new(4));
    let mut search = FahanaSearch::new(search_config(30, 7)).unwrap();
    let mut stage = PooledBatchEvaluator::new(pool, search.surrogate().clone());
    let parallel = search.run_with_batch_evaluator(&mut stage).unwrap();

    assert_eq!(serial.history, parallel.history);
    assert_eq!(serial.valid_ratio, parallel.valid_ratio);
    assert_eq!(
        serial.best.as_ref().map(|b| &b.record),
        parallel.best.as_ref().map(|b| &b.record)
    );
    assert_eq!(
        serial.fairest.as_ref().map(|b| &b.record),
        parallel.fairest.as_ref().map(|b| &b.record)
    );
}

#[test]
fn cached_evaluation_is_bit_identical_to_uncached() {
    let uncached = FahanaSearch::new(search_config(30, 11))
        .unwrap()
        .run()
        .unwrap();

    let cache = Arc::new(EvalCache::new());
    let mut search = FahanaSearch::new(search_config(30, 11)).unwrap();
    let mut cached_eval = CachedEvaluator::surrogate(search.surrogate().clone(), cache.clone());
    let cached = search.run_with_evaluator(&mut cached_eval).unwrap();
    assert_eq!(uncached.history, cached.history);

    // a second identical search is served from the cache and still agrees
    let mut rerun_search = FahanaSearch::new(search_config(30, 11)).unwrap();
    let mut rerun_eval =
        CachedEvaluator::surrogate(rerun_search.surrogate().clone(), cache.clone());
    let rerun = rerun_search.run_with_evaluator(&mut rerun_eval).unwrap();
    assert_eq!(uncached.history, rerun.history);
    assert!(
        rerun_eval.local_stats().hits > 0,
        "the rerun should be served from the cache, got {:?}",
        rerun_eval.local_stats()
    );
    assert_eq!(
        rerun_eval.local_stats().misses,
        0,
        "an identical search must not re-evaluate anything"
    );
    assert!(cache.stats().hit_rate() > 0.0);
}

#[test]
fn cached_pooled_and_plain_serial_runs_all_agree() {
    // the full stack at once: shared cache + pooled batches vs plain serial
    let serial = FahanaSearch::new(search_config(25, 13))
        .unwrap()
        .run()
        .unwrap();

    let pool = Arc::new(ThreadPool::new(3));
    let cache = Arc::new(EvalCache::new());
    let mut search = FahanaSearch::new(search_config(25, 13)).unwrap();
    let cached = CachedEvaluator::surrogate(search.surrogate().clone(), cache);
    let mut stage = PooledBatchEvaluator::new(pool, cached);
    let full_stack = search.run_with_batch_evaluator(&mut stage).unwrap();

    assert_eq!(serial.history, full_stack.history);
}

#[test]
fn campaign_over_eight_scenarios_matches_direct_runs_and_hits_the_cache() {
    // acceptance criteria: >= 8 scenarios (2 devices x 2 rewards x
    // freezing on/off) on >= 2 worker threads with a positive cache
    // hit-rate, and every parallel outcome equal to its serial equivalent
    let campaign = CampaignConfig {
        episodes: 10,
        samples: 150,
        threads: 3,
        parallel_episodes: true,
        ..CampaignConfig::default()
    };
    assert_eq!(campaign.scenario_count(), 8);

    let engine = CampaignEngine::new(campaign.clone()).unwrap();
    assert!(engine.threads() >= 2);
    let outcome = engine.run().unwrap();

    assert_eq!(outcome.scenarios.len(), 8);
    assert!(
        outcome.cache.hit_rate() > 0.0,
        "scenario grid must reuse evaluations, got {:?}",
        outcome.cache
    );

    for scenario_outcome in &outcome.scenarios {
        let direct = FahanaSearch::new(scenario_outcome.scenario.to_fahana_config(&campaign))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(
            direct.history, scenario_outcome.outcome.history,
            "scenario {} must match its serial equivalent",
            scenario_outcome.scenario.name
        );
    }
}

#[test]
fn warm_started_campaign_is_bit_identical_to_a_cold_run() {
    // persist the cache of a cold campaign, reload it from disk, and run
    // the same campaign warm: outcomes must match bit-for-bit and every
    // evaluation must be served from the snapshot (zero misses)
    let config = CampaignConfig {
        episodes: 8,
        samples: 150,
        threads: 2,
        ..CampaignConfig::default()
    };

    let cold_cache = Arc::new(EvalCache::new());
    let cold = CampaignEngine::new(config.clone())
        .unwrap()
        .run_with_cache(Arc::clone(&cold_cache))
        .unwrap();
    assert!(cold.cache.misses > 0, "cold run must evaluate something");

    let dir = std::env::temp_dir().join(format!("fahana-warm-start-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.fsnap");
    let persisted = cold_cache.snapshot();
    assert_eq!(persisted.len(), cold.cache_entries);
    persisted.save(&path).unwrap();

    let reloaded = CacheSnapshot::load(&path).unwrap();
    assert_eq!(reloaded, persisted, "disk round-trip must be lossless");
    let warm_cache = Arc::new(EvalCache::new());
    assert_eq!(warm_cache.absorb(&reloaded), reloaded.len());

    let warm = CampaignEngine::new(config)
        .unwrap()
        .run_with_cache(Arc::clone(&warm_cache))
        .unwrap();

    assert_eq!(warm.scenarios.len(), cold.scenarios.len());
    for (cold_scenario, warm_scenario) in cold.scenarios.iter().zip(warm.scenarios.iter()) {
        assert_eq!(cold_scenario.scenario.name, warm_scenario.scenario.name);
        assert_eq!(
            cold_scenario.outcome.history, warm_scenario.outcome.history,
            "scenario {} must be bit-identical warm vs cold",
            cold_scenario.scenario.name
        );
    }
    assert_eq!(
        warm.cache.misses, 0,
        "a warm-started rerun of the identical grid must never re-evaluate"
    );
    assert!(warm.cache.hits > 0);
    assert_eq!(warm.cache_entries, cold.cache_entries);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_runs_merge_bit_identically_to_a_single_process() {
    // the sharding acceptance gate: for N in {2, 3, 8}, running the
    // 8-scenario grid as N independent worker slices (each with its own
    // cache, as separate processes would) and merging the partial reports
    // and cache snapshots must reproduce the single-process run
    // bit-for-bit — canonical report rendering and snapshot bytes alike
    let config = CampaignConfig {
        episodes: 5,
        samples: 120,
        threads: 2,
        ..CampaignConfig::default()
    };
    let plan = CampaignPlan::new(config.clone()).unwrap();
    assert_eq!(plan.len(), 8);

    let single_cache = Arc::new(EvalCache::new());
    let single = CampaignEngine::new(config.clone())
        .unwrap()
        .run_with_cache(Arc::clone(&single_cache))
        .unwrap();
    let single_canonical = CampaignReport::from_outcome(&single).canonical();
    let single_snapshot_bytes = single_cache.snapshot().to_bytes();

    for total in [2usize, 3, 8] {
        let mut parts = Vec::new();
        let mut merged_snapshot = CacheSnapshot::new();
        let mut nonempty_shards = 0;
        for index in 0..total {
            let shard = ShardSpec::new(index, total).unwrap();
            let shard_cache = Arc::new(EvalCache::new());
            let outcome = CampaignEngine::new(config.clone())
                .unwrap()
                .run_shard(shard, Arc::clone(&shard_cache))
                .unwrap();
            nonempty_shards += usize::from(!outcome.scenarios.is_empty());
            parts.push(CampaignReport::from_outcome(&outcome));
            let merge = merged_snapshot.merge(&shard_cache.snapshot());
            assert_eq!(
                merge.conflicts, 0,
                "deterministic shards must never disagree on a cache entry (N={total})"
            );
        }
        assert!(
            nonempty_shards >= 2.min(total),
            "the hash partition should spread the grid at N={total}"
        );

        let merged = CampaignReport::merge(&parts, &plan.order()).unwrap();
        assert_eq!(
            merged.canonical().to_json().render(),
            single_canonical.to_json().render(),
            "merged sharded report (N={total}) must equal the single-process run"
        );
        assert_eq!(
            merged_snapshot.to_bytes(),
            single_snapshot_bytes,
            "merged cache snapshot (N={total}) must equal the single-process snapshot"
        );
    }
}

#[test]
fn arbitrary_cell_partitions_merge_bit_identically() {
    // the fault-tolerance gate behind rebalancing: hash slices are just
    // one partition of the plan — after a worker dies, its cells run as
    // explicit assignments whose shapes no hash would produce. ANY
    // partition of the plan's cells (uneven, out of hash order, with an
    // idle worker thrown in) must merge back to the single-process run
    // bit-for-bit, reports and snapshots alike
    let config = CampaignConfig {
        episodes: 5,
        samples: 120,
        threads: 2,
        ..CampaignConfig::default()
    };
    let plan = CampaignPlan::new(config.clone()).unwrap();
    let order = plan.order();
    assert_eq!(order.len(), 8);

    let single_cache = Arc::new(EvalCache::new());
    let single = CampaignEngine::new(config.clone())
        .unwrap()
        .run_with_cache(Arc::clone(&single_cache))
        .unwrap();
    let single_canonical = CampaignReport::from_outcome(&single).canonical();
    let single_snapshot_bytes = single_cache.snapshot().to_bytes();

    // three partitions: uneven, reversed round-robin, and one with an
    // idle (empty) assignment — the shapes retry/rebalance produces
    let partitions: Vec<Vec<Vec<String>>> = vec![
        vec![
            order[..1].to_vec(),
            order[1..4].to_vec(),
            order[4..].to_vec(),
        ],
        vec![
            order.iter().rev().step_by(2).cloned().collect(),
            order.iter().rev().skip(1).step_by(2).cloned().collect(),
        ],
        vec![order[..5].to_vec(), Vec::new(), order[5..].to_vec()],
    ];
    for partition in partitions {
        let mut parts = Vec::new();
        let mut merged_snapshot = CacheSnapshot::new();
        for cells in &partition {
            let worker_cache = Arc::new(EvalCache::new());
            let outcome = CampaignEngine::new(config.clone())
                .unwrap()
                .run_cells(cells, Arc::clone(&worker_cache))
                .unwrap();
            assert_eq!(outcome.scenarios.len(), cells.len());
            parts.push(CampaignReport::from_outcome(&outcome));
            let merge = merged_snapshot.merge(&worker_cache.snapshot());
            assert_eq!(
                merge.conflicts, 0,
                "deterministic workers must never disagree on a cache entry"
            );
        }
        let merged = CampaignReport::merge(&parts, &order).unwrap();
        assert_eq!(
            merged.canonical().to_json().render(),
            single_canonical.to_json().render(),
            "partition {partition:?} must merge to the single-process report"
        );
        assert_eq!(
            merged_snapshot.to_bytes(),
            single_snapshot_bytes,
            "partition {partition:?} must merge to the single-process snapshot"
        );
    }
}

#[test]
fn compacted_snapshot_is_smaller_but_warm_starts_equivalently() {
    // a snapshot accumulated under a *wider* configuration (a larger
    // episode budget explores more children) is compacted against the
    // narrowed grid that keeps running: entries the narrowed search space
    // no longer reaches are dropped, and the shrunken snapshot still
    // serves the narrowed grid with zero misses
    let wide = CampaignConfig {
        episodes: 8,
        samples: 120,
        threads: 2,
        devices: vec![edgehw::DeviceKind::RaspberryPi4],
        rewards: vec![fahana_runtime::RewardSetting::balanced()],
        freezing: vec![true],
        ..CampaignConfig::default()
    };
    let narrow = CampaignConfig {
        episodes: 5,
        ..wide.clone()
    };

    let wide_cache = Arc::new(EvalCache::new());
    CampaignEngine::new(wide)
        .unwrap()
        .run_with_cache(Arc::clone(&wide_cache))
        .unwrap();
    let bloated = wide_cache.snapshot();

    // compact: absorb the bloated snapshot into a tracking cache, replay
    // the narrowed grid, keep only what the replay consulted
    let tracking = Arc::new(EvalCache::with_tracking());
    assert_eq!(tracking.absorb(&bloated), bloated.len());
    let compact_run = CampaignEngine::new(narrow.clone())
        .unwrap()
        .run_with_cache(Arc::clone(&tracking))
        .unwrap();
    assert_eq!(
        compact_run.cache.misses, 0,
        "the narrowed grid replays a prefix of the wide run, so the replay is fully warm"
    );
    let compacted = tracking.snapshot_touched().unwrap();
    assert!(
        compacted.len() < bloated.len(),
        "compaction must shrink the snapshot ({} vs {})",
        compacted.len(),
        bloated.len()
    );

    // equivalence: a campaign warm-started from the compacted snapshot
    // matches one warm-started from the bloated snapshot, with zero misses
    let warm_cache = Arc::new(EvalCache::new());
    assert_eq!(warm_cache.absorb(&compacted), compacted.len());
    let warm = CampaignEngine::new(narrow.clone())
        .unwrap()
        .run_with_cache(Arc::clone(&warm_cache))
        .unwrap();
    assert_eq!(warm.cache.misses, 0, "compacted warm start must stay warm");

    let cold = CampaignEngine::new(narrow).unwrap().run().unwrap();
    for (warm_scenario, cold_scenario) in warm.scenarios.iter().zip(cold.scenarios.iter()) {
        assert_eq!(
            warm_scenario.outcome.history, cold_scenario.outcome.history,
            "scenario {} must be bit-identical from the compacted snapshot",
            warm_scenario.scenario.name
        );
    }
}

#[test]
fn telemetry_is_a_side_channel_for_campaign_artifacts() {
    // the tentpole contract of the observability layer: running the real
    // fahana-campaign binary with `--trace-out` and `--metrics-out` must
    // leave the canonical report and the cache snapshot BYTE-identical to
    // an uninstrumented run — telemetry observes, never influences
    let dir = std::env::temp_dir().join(format!("fahana-telemetry-det-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let config = dir.join("campaign.conf");
    std::fs::write(
        &config,
        "episodes = 4\nsamples = 120\nthreads = 2\nseed = 23\n\
         devices = raspberry_pi_4\nfreezing = on, off\n\
         [reward balanced]\nalpha = 1.0\nbeta = 1.0\n",
    )
    .unwrap();

    let campaign_bin = env!("CARGO_BIN_EXE_fahana-campaign");
    let run = |extra: &[&str], out: &str, snap: &str| -> String {
        let mut args = vec![
            "--config",
            config.to_str().unwrap(),
            "--canonical",
            "--out",
            out,
            "--cache-out",
            snap,
        ];
        args.extend_from_slice(extra);
        let output = std::process::Command::new(campaign_bin)
            .args(&args)
            .current_dir(&dir)
            .output()
            .unwrap();
        assert!(
            output.status.success(),
            "fahana-campaign {args:?} failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8_lossy(&output.stderr).into_owned()
    };
    run(&[], "plain", "plain.fsnap");
    let stderr = run(
        &[
            "--trace-out",
            "trace.jsonl",
            "--metrics-out",
            "metrics.json",
        ],
        "traced",
        "traced.fsnap",
    );

    assert_eq!(
        std::fs::read(dir.join("plain/campaign.json")).unwrap(),
        std::fs::read(dir.join("traced/campaign.json")).unwrap(),
        "tracing must not change the canonical report"
    );
    assert_eq!(
        std::fs::read(dir.join("plain.fsnap")).unwrap(),
        std::fs::read(dir.join("traced.fsnap")).unwrap(),
        "tracing must not change the cache snapshot"
    );

    // the end-of-run cache summary reaches stderr
    assert!(stderr.contains("hit-rate"), "{stderr}");
    assert!(stderr.contains("absorbed from snapshots"), "{stderr}");

    // every trace line the binary emitted round-trips through the in-repo
    // parser and carries the fixed envelope
    let trace = std::fs::read_to_string(dir.join("trace.jsonl")).unwrap();
    assert!(!trace.is_empty());
    let mut scenario_spans = 0;
    let mut campaign_spans = 0;
    for line in trace.lines() {
        let record = Json::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        assert!(record.get("ts_ms").unwrap().as_i64().is_some(), "{line}");
        let kind = record.get("kind").unwrap().as_str().unwrap();
        assert!(kind == "span" || kind == "event", "{line}");
        assert!(record.get("fields").is_some(), "{line}");
        match record.get("name").unwrap().as_str().unwrap() {
            "scenario" => scenario_spans += 1,
            "campaign" => campaign_spans += 1,
            _ => {}
        }
    }
    assert_eq!(scenario_spans, 2, "one span per grid cell:\n{trace}");
    assert_eq!(campaign_spans, 1, "{trace}");

    // the metrics snapshot parses and names the campaign metric catalog
    let metrics = std::fs::read_to_string(dir.join("metrics.json")).unwrap();
    let parsed = Json::parse(&metrics).unwrap();
    let names: Vec<&str> = parsed
        .get("metrics")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|metric| metric.get("name").unwrap().as_str().unwrap())
        .collect();
    for required in [
        "fahana_scenarios_total",
        "fahana_scenario_duration_ms",
        "fahana_scenario_queue_wait_ms",
        "fahana_cache_hits_total",
        "fahana_cache_misses_total",
        "fahana_cache_entries",
        "fahana_cache_shards",
        "fahana_cache_lock_contended_total",
        "fahana_cache_shard_hits_total",
        "fahana_cache_shard_entries",
        "fahana_pool_jobs_total",
        "fahana_pool_threads",
    ] {
        assert!(names.contains(&required), "{required} missing: {names:?}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cache_shard_count_does_not_affect_results_or_snapshots() {
    // sharding is an implementation detail of the cache: any shard count
    // must produce bit-identical search histories and byte-identical
    // snapshot encodings (the snapshot sorts by key, so shard iteration
    // order never leaks into the bytes)
    let uncached = FahanaSearch::new(search_config(25, 17))
        .unwrap()
        .run()
        .unwrap();

    let mut snapshots = Vec::new();
    for shards in [1usize, 2, 64] {
        let cache = Arc::new(EvalCache::with_shards(shards));
        assert_eq!(cache.shard_count(), shards.next_power_of_two());
        let mut search = FahanaSearch::new(search_config(25, 17)).unwrap();
        let mut cached_eval = CachedEvaluator::surrogate(search.surrogate().clone(), cache.clone());
        let outcome = search.run_with_evaluator(&mut cached_eval).unwrap();
        assert_eq!(
            uncached.history, outcome.history,
            "a {shards}-shard cache must not change the search"
        );
        snapshots.push(cache.snapshot().to_bytes());
    }
    assert!(
        snapshots.windows(2).all(|w| w[0] == w[1]),
        "snapshot bytes must be shard-count-invariant"
    );
}

#[test]
fn campaign_results_do_not_depend_on_thread_count_or_cache() {
    let base = CampaignConfig {
        episodes: 8,
        samples: 150,
        ..CampaignConfig::default()
    };

    let single = CampaignEngine::new(CampaignConfig {
        threads: 1,
        use_cache: false,
        ..base.clone()
    })
    .unwrap()
    .run()
    .unwrap();

    let parallel_cached = CampaignEngine::new(CampaignConfig {
        threads: 4,
        use_cache: true,
        parallel_episodes: true,
        ..base
    })
    .unwrap()
    .run()
    .unwrap();

    assert_eq!(single.scenarios.len(), parallel_cached.scenarios.len());
    for (a, b) in single
        .scenarios
        .iter()
        .zip(parallel_cached.scenarios.iter())
    {
        assert_eq!(a.scenario.name, b.scenario.name);
        assert_eq!(
            a.outcome.history, b.outcome.history,
            "scenario {} must be invariant to threading and caching",
            a.scenario.name
        );
    }
}
