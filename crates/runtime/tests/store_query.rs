//! End-to-end tests for the persistence + query subsystem, including the
//! acceptance path: campaign with `--cache-out`, re-run with `--cache-in`
//! reporting a nonzero hit-rate and bit-identical best architectures, and
//! `fahana-query` answering a device+constraint query from the store.

use std::path::{Path, PathBuf};
use std::process::Command;

use edgehw::DeviceKind;
use fahana_runtime::{
    campaign_json, ArtifactStore, CampaignConfig, CampaignEngine, CampaignReport, Json,
    RewardSetting, StoreQuery,
};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fahana-e2e-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn tiny_config(seed: u64) -> CampaignConfig {
    CampaignConfig {
        episodes: 5,
        samples: 120,
        threads: 2,
        seed,
        devices: vec![DeviceKind::RaspberryPi4, DeviceKind::OdroidXu4],
        rewards: vec![RewardSetting::balanced()],
        freezing: vec![true],
        ..CampaignConfig::default()
    }
}

#[test]
fn store_merges_frontiers_across_campaigns() {
    let dir = temp_dir("merge");
    let store = ArtifactStore::open(&dir).unwrap();

    // two campaigns with different seeds explore different children
    let outcomes: Vec<_> = [21u64, 22]
        .iter()
        .map(|&seed| {
            CampaignEngine::new(tiny_config(seed))
                .unwrap()
                .run()
                .unwrap()
        })
        .collect();
    for (index, outcome) in outcomes.iter().enumerate() {
        store
            .ingest(&format!("seed-{index}"), &campaign_json(outcome))
            .unwrap();
    }

    let answer = store
        .query(&StoreQuery {
            device: Some(DeviceKind::RaspberryPi4),
            ..StoreQuery::default()
        })
        .unwrap();
    assert_eq!(answer.campaigns_consulted, 2);
    assert_eq!(answer.scenarios_matched, 2);

    // the merged frontier equals fahana's merge over the per-scenario
    // frontiers of the matching device
    let expected = fahana::merge_frontiers(
        outcomes
            .iter()
            .flat_map(|outcome| outcome.scenarios.iter())
            .filter(|s| s.scenario.device == DeviceKind::RaspberryPi4)
            .map(|s| s.outcome.accuracy_fairness_frontier()),
    );
    assert_eq!(answer.frontier, expected);

    // best candidate answers the constraint question: it must satisfy the
    // filters and dominate every other candidate on reward
    if let Some(best) = &answer.best {
        for candidate in &answer.candidates {
            assert!(best.record.reward >= candidate.record.reward);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

fn run_binary(binary: &str, args: &[&str], cwd: &Path) -> (String, String) {
    let output = Command::new(binary)
        .args(args)
        .current_dir(cwd)
        .output()
        .unwrap_or_else(|e| panic!("cannot run {binary}: {e}"));
    assert!(
        output.status.success(),
        "{binary} {args:?} failed with {}\nstderr: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn cli_cache_out_cache_in_and_query_acceptance_path() {
    let dir = temp_dir("cli");
    let campaign_bin = env!("CARGO_BIN_EXE_fahana-campaign");
    let query_bin = env!("CARGO_BIN_EXE_fahana-query");

    // a small single-scenario grid via a config file keeps the smoke fast
    let config_path = dir.join("campaign.conf");
    std::fs::write(
        &config_path,
        "episodes = 5\nsamples = 120\nthreads = 2\nseed = 77\n\
         devices = raspberry_pi_4\nfreezing = on\n\
         [reward balanced]\nalpha = 1.0\nbeta = 1.0\n",
    )
    .unwrap();
    let config = config_path.to_str().unwrap();

    // cold run: persist report, cache snapshot, and store artifact
    run_binary(
        campaign_bin,
        &[
            "--config",
            config,
            "--out",
            "cold-out",
            "--cache-out",
            "cache.fsnap",
            "--store",
            "store",
            "--store-id",
            "cold",
        ],
        &dir,
    );
    assert!(dir.join("cache.fsnap").exists());
    assert!(dir.join("store/artifacts/cold.json").exists());
    assert!(dir.join("store/catalog.json").exists());

    // warm run: same grid, cache-in, its own report directory
    let (_, warm_stderr) = run_binary(
        campaign_bin,
        &[
            "--config",
            config,
            "--out",
            "warm-out",
            "--cache-in",
            "cache.fsnap",
            "--store",
            "store",
            "--store-id",
            "warm",
        ],
        &dir,
    );
    assert!(
        warm_stderr.contains("warm start: absorbed"),
        "stderr: {warm_stderr}"
    );

    let cold_report = CampaignReport::parse(
        &std::fs::read_to_string(dir.join("cold-out/campaign.json")).unwrap(),
    )
    .unwrap();
    let warm_report = CampaignReport::parse(
        &std::fs::read_to_string(dir.join("warm-out/campaign.json")).unwrap(),
    )
    .unwrap();

    // nonzero hit-rate, zero misses: everything came from the snapshot
    assert!(warm_report.cache.hits > 0);
    assert_eq!(warm_report.cache.misses, 0);
    assert!(cold_report.cache.misses > 0);

    // bit-identical best architectures (and whole summaries)
    for (cold_scenario, warm_scenario) in cold_report
        .scenarios
        .iter()
        .zip(warm_report.scenarios.iter())
    {
        assert_eq!(cold_scenario.best, warm_scenario.best);
        assert_eq!(cold_scenario.best_small, warm_scenario.best_small);
        assert_eq!(cold_scenario.fairest, warm_scenario.fairest);
        assert_eq!(
            cold_scenario.accuracy_fairness_frontier,
            warm_scenario.accuracy_fairness_frontier
        );
    }

    // fahana-query answers a device+constraint question from the store
    let (stdout, _) = run_binary(
        query_bin,
        &[
            "--store",
            "store",
            "--device",
            "raspberry_pi_4",
            "--max-latency-ms",
            "100000",
            "--json",
        ],
        &dir,
    );
    let answer = Json::parse(stdout.trim()).unwrap();
    assert_eq!(answer.get("campaigns_consulted").unwrap().as_i64(), Some(2));
    let best = answer.get("best").unwrap();
    assert!(
        best.get("name").and_then(Json::as_str).is_some(),
        "query must name a best architecture, got {}",
        best.render()
    );
    let latency = best.get("latency_ms").unwrap().as_f64().unwrap();
    assert!(latency <= 100000.0);

    // an unsatisfiable constraint is answered, with null best
    let (stdout, _) = run_binary(
        query_bin,
        &["--store", "store", "--max-latency-ms", "0", "--json"],
        &dir,
    );
    let answer = Json::parse(stdout.trim()).unwrap();
    assert_eq!(answer.get("best"), Some(&Json::Null));

    // --list sees both ingested campaigns
    let (stdout, _) = run_binary(query_bin, &["--store", "store", "--list"], &dir);
    assert!(stdout.contains("cold:"), "list output: {stdout}");
    assert!(stdout.contains("warm:"), "list output: {stdout}");

    std::fs::remove_dir_all(&dir).ok();
}
