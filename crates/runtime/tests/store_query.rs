//! End-to-end tests for the persistence + query subsystem, including the
//! acceptance path: campaign with `--cache-out`, re-run with `--cache-in`
//! reporting a nonzero hit-rate and bit-identical best architectures, and
//! `fahana-query` answering a device+constraint query from the store.

use std::path::{Path, PathBuf};
use std::process::Command;

use edgehw::DeviceKind;
use fahana_runtime::{
    campaign_json, ArtifactStore, CampaignConfig, CampaignEngine, CampaignReport, Json,
    RewardSetting, StoreQuery,
};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fahana-e2e-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn tiny_config(seed: u64) -> CampaignConfig {
    CampaignConfig {
        episodes: 5,
        samples: 120,
        threads: 2,
        seed,
        devices: vec![DeviceKind::RaspberryPi4, DeviceKind::OdroidXu4],
        rewards: vec![RewardSetting::balanced()],
        freezing: vec![true],
        ..CampaignConfig::default()
    }
}

#[test]
fn store_merges_frontiers_across_campaigns() {
    let dir = temp_dir("merge");
    let store = ArtifactStore::open(&dir).unwrap();

    // two campaigns with different seeds explore different children
    let outcomes: Vec<_> = [21u64, 22]
        .iter()
        .map(|&seed| {
            CampaignEngine::new(tiny_config(seed))
                .unwrap()
                .run()
                .unwrap()
        })
        .collect();
    for (index, outcome) in outcomes.iter().enumerate() {
        store
            .ingest(&format!("seed-{index}"), &campaign_json(outcome))
            .unwrap();
    }

    let answer = store
        .query(&StoreQuery {
            device: Some(DeviceKind::RaspberryPi4),
            ..StoreQuery::default()
        })
        .unwrap();
    assert_eq!(answer.campaigns_consulted, 2);
    assert_eq!(answer.scenarios_matched, 2);

    // the merged frontier equals fahana's merge over the per-scenario
    // frontiers of the matching device
    let expected = fahana::merge_frontiers(
        outcomes
            .iter()
            .flat_map(|outcome| outcome.scenarios.iter())
            .filter(|s| s.scenario.device == DeviceKind::RaspberryPi4)
            .map(|s| s.outcome.accuracy_fairness_frontier()),
    );
    assert_eq!(answer.frontier, expected);

    // best candidate answers the constraint question: it must satisfy the
    // filters and dominate every other candidate on reward
    if let Some(best) = &answer.best {
        for candidate in &answer.candidates {
            assert!(best.record.reward >= candidate.record.reward);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

fn run_binary(binary: &str, args: &[&str], cwd: &Path) -> (String, String) {
    let output = Command::new(binary)
        .args(args)
        .current_dir(cwd)
        .output()
        .unwrap_or_else(|e| panic!("cannot run {binary}: {e}"));
    assert!(
        output.status.success(),
        "{binary} {args:?} failed with {}\nstderr: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn cli_cache_out_cache_in_and_query_acceptance_path() {
    let dir = temp_dir("cli");
    let campaign_bin = env!("CARGO_BIN_EXE_fahana-campaign");
    let query_bin = env!("CARGO_BIN_EXE_fahana-query");

    // a small single-scenario grid via a config file keeps the smoke fast
    let config_path = dir.join("campaign.conf");
    std::fs::write(
        &config_path,
        "episodes = 5\nsamples = 120\nthreads = 2\nseed = 77\n\
         devices = raspberry_pi_4\nfreezing = on\n\
         [reward balanced]\nalpha = 1.0\nbeta = 1.0\n",
    )
    .unwrap();
    let config = config_path.to_str().unwrap();

    // cold run: persist report, cache snapshot, and store artifact
    run_binary(
        campaign_bin,
        &[
            "--config",
            config,
            "--out",
            "cold-out",
            "--cache-out",
            "cache.fsnap",
            "--store",
            "store",
            "--store-id",
            "cold",
        ],
        &dir,
    );
    assert!(dir.join("cache.fsnap").exists());
    assert!(dir.join("store/artifacts/cold.json").exists());
    assert!(dir.join("store/catalog.json").exists());

    // warm run: same grid, cache-in, its own report directory
    let (_, warm_stderr) = run_binary(
        campaign_bin,
        &[
            "--config",
            config,
            "--out",
            "warm-out",
            "--cache-in",
            "cache.fsnap",
            "--store",
            "store",
            "--store-id",
            "warm",
        ],
        &dir,
    );
    assert!(
        warm_stderr.contains("warm start: absorbed"),
        "stderr: {warm_stderr}"
    );

    let cold_report = CampaignReport::parse(
        &std::fs::read_to_string(dir.join("cold-out/campaign.json")).unwrap(),
    )
    .unwrap();
    let warm_report = CampaignReport::parse(
        &std::fs::read_to_string(dir.join("warm-out/campaign.json")).unwrap(),
    )
    .unwrap();

    // nonzero hit-rate, zero misses: everything came from the snapshot
    assert!(warm_report.cache.hits > 0);
    assert_eq!(warm_report.cache.misses, 0);
    assert!(cold_report.cache.misses > 0);

    // bit-identical best architectures (and whole summaries)
    for (cold_scenario, warm_scenario) in cold_report
        .scenarios
        .iter()
        .zip(warm_report.scenarios.iter())
    {
        assert_eq!(cold_scenario.best, warm_scenario.best);
        assert_eq!(cold_scenario.best_small, warm_scenario.best_small);
        assert_eq!(cold_scenario.fairest, warm_scenario.fairest);
        assert_eq!(
            cold_scenario.accuracy_fairness_frontier,
            warm_scenario.accuracy_fairness_frontier
        );
    }

    // fahana-query answers a device+constraint question from the store
    let (stdout, _) = run_binary(
        query_bin,
        &[
            "--store",
            "store",
            "--device",
            "raspberry_pi_4",
            "--max-latency-ms",
            "100000",
            "--json",
        ],
        &dir,
    );
    let answer = Json::parse(stdout.trim()).unwrap();
    assert_eq!(answer.get("campaigns_consulted").unwrap().as_i64(), Some(2));
    let best = answer.get("best").unwrap();
    assert!(
        best.get("name").and_then(Json::as_str).is_some(),
        "query must name a best architecture, got {}",
        best.render()
    );
    let latency = best.get("latency_ms").unwrap().as_f64().unwrap();
    assert!(latency <= 100000.0);

    // an unsatisfiable constraint is answered, with null best
    let (stdout, _) = run_binary(
        query_bin,
        &["--store", "store", "--max-latency-ms", "0", "--json"],
        &dir,
    );
    let answer = Json::parse(stdout.trim()).unwrap();
    assert_eq!(answer.get("best"), Some(&Json::Null));

    // --list sees both ingested campaigns
    let (stdout, _) = run_binary(query_bin, &["--store", "store", "--list"], &dir);
    assert!(stdout.contains("cold:"), "list output: {stdout}");
    assert!(stdout.contains("warm:"), "list output: {stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn query_exit_codes_distinguish_unknown_empty_and_covered_devices() {
    let dir = temp_dir("exit-codes");
    let query_bin = env!("CARGO_BIN_EXE_fahana-query");

    // a store holding Raspberry-Pi-only data
    let store = ArtifactStore::open(dir.join("store")).unwrap();
    let outcome = CampaignEngine::new(CampaignConfig {
        devices: vec![DeviceKind::RaspberryPi4],
        ..tiny_config(88)
    })
    .unwrap()
    .run()
    .unwrap();
    store.ingest("pi-only", &campaign_json(&outcome)).unwrap();

    let status_of = |args: &[&str]| {
        Command::new(query_bin)
            .args(args)
            .current_dir(&dir)
            .output()
            .unwrap()
    };

    // covered device → 0, even when constraints admit nothing
    let covered = status_of(&["--store", "store", "--device", "raspberry_pi_4", "--json"]);
    assert_eq!(covered.status.code(), Some(0));
    let starved = status_of(&[
        "--store",
        "store",
        "--device",
        "raspberry_pi_4",
        "--max-latency-ms",
        "0",
        "--json",
    ]);
    assert_eq!(
        starved.status.code(),
        Some(0),
        "an empty answer for a covered device is still an answer"
    );
    // reward/freezing filters narrowing a covered device to zero matching
    // scenarios must not fake the "device missing" signal either
    let filtered = status_of(&[
        "--store",
        "store",
        "--device",
        "raspberry_pi_4",
        "--freezing",
        "off",
        "--json",
    ]);
    assert_eq!(
        filtered.status.code(),
        Some(0),
        "a covered device behind excluding filters must exit 0"
    );

    // known device with no scenarios in the store → the 404-style exit 4,
    // with the (empty) JSON answer still printed for scripted consumers
    let absent = status_of(&["--store", "store", "--device", "odroid_xu4", "--json"]);
    assert_eq!(absent.status.code(), Some(4), "known-but-empty must exit 4");
    let answer = Json::parse(String::from_utf8(absent.stdout).unwrap().trim()).unwrap();
    assert_eq!(answer.get("scenarios_matched").unwrap().as_i64(), Some(0));
    assert!(String::from_utf8(absent.stderr)
        .unwrap()
        .contains("no scenarios for it"));

    // a slug this build does not know stays a usage error → 2
    let unknown = status_of(&["--store", "store", "--device", "toaster", "--json"]);
    assert_eq!(unknown.status.code(), Some(2), "unknown device must exit 2");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_cache_compact_writes_a_smaller_equivalent_snapshot() {
    let dir = temp_dir("compact");
    let campaign_bin = env!("CARGO_BIN_EXE_fahana-campaign");

    // a wide configuration (larger episode budget → more children
    // explored) bloats the snapshot relative to the narrow grid we keep
    // running; compaction drops the entries the narrow grid never reaches
    let wide = dir.join("wide.conf");
    std::fs::write(
        &wide,
        "episodes = 8\nsamples = 120\nthreads = 2\nseed = 78\n\
         devices = raspberry_pi_4\nfreezing = on\n\
         [reward balanced]\n",
    )
    .unwrap();
    let narrow = dir.join("narrow.conf");
    std::fs::write(
        &narrow,
        "episodes = 5\nsamples = 120\nthreads = 2\nseed = 78\n\
         devices = raspberry_pi_4\nfreezing = on\n\
         [reward balanced]\n",
    )
    .unwrap();

    run_binary(
        campaign_bin,
        &[
            "--config",
            wide.to_str().unwrap(),
            "--cache-out",
            "wide.fsnap",
        ],
        &dir,
    );
    let (_, stderr) = run_binary(
        campaign_bin,
        &[
            "--config",
            narrow.to_str().unwrap(),
            "--cache-compact",
            "--cache-in",
            "wide.fsnap",
            "--cache-out",
            "compact.fsnap",
        ],
        &dir,
    );
    assert!(stderr.contains("compacted cache snapshot"), "{stderr}");

    let wide_len = std::fs::metadata(dir.join("wide.fsnap")).unwrap().len();
    let compact_len = std::fs::metadata(dir.join("compact.fsnap")).unwrap().len();
    assert!(
        compact_len < wide_len,
        "compacted snapshot must shrink ({compact_len} vs {wide_len} bytes)"
    );

    // equivalence: warm-starting the narrow grid from the compacted
    // snapshot still serves every evaluation
    run_binary(
        campaign_bin,
        &[
            "--config",
            narrow.to_str().unwrap(),
            "--cache-in",
            "compact.fsnap",
            "--out",
            "warm",
        ],
        &dir,
    );
    let warm = std::fs::read_to_string(dir.join("warm/campaign.json")).unwrap();
    let report = CampaignReport::parse(&warm).unwrap();
    assert_eq!(
        report.cache.misses, 0,
        "compacted warm start must stay warm"
    );
    assert!(report.cache.hits > 0);

    // --cache-compact without both snapshot paths is a usage failure
    let incomplete = Command::new(campaign_bin)
        .args(["--config", narrow.to_str().unwrap(), "--cache-compact"])
        .current_dir(&dir)
        .output()
        .unwrap();
    assert!(!incomplete.status.success());
    assert!(String::from_utf8(incomplete.stderr)
        .unwrap()
        .contains("--cache-compact"));

    std::fs::remove_dir_all(&dir).ok();
}
