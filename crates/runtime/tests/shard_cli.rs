//! End-to-end tests for the `fahana-shard` coordinator: real worker
//! processes spawned over a real config, partial reports and cache
//! snapshots merged, the result published into an artifact store and into
//! a live `fahana-serve` daemon — and the merged artifacts compared
//! byte-for-byte against a single-process run (what the CI sharded smoke
//! job re-checks with `diff`).
//!
//! The fault-tolerance half injects real worker crashes through the
//! `FAHANA_TEST_FAIL_SHARD` / `FAHANA_TEST_FAIL_MARKER` /
//! `FAHANA_TEST_FAIL_POINT` hooks in `fahana-campaign` (a crashed worker
//! process, not a mock): retried and rebalanced runs must still be
//! bit-identical to a clean single-process run, and exhausted retries
//! must name exactly the cells that never completed.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use fahana_runtime::{ArtifactStore, CampaignReport, Json, Server, StoreView};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fahana-shard-e2e-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A 4-scenario grid (2 devices × 1 reward × freezing on/off) small
/// enough for several process spawns per test. At `--shards 3`, the
/// stable name-hash partition gives shard 1 two cells, and shards 2 and 3
/// one each; shard 2's cell is `raspberry_pi_4/balanced/frozen` (pinned
/// in `shard.rs`), which the crash-injection tests rely on.
fn write_config(dir: &Path) -> PathBuf {
    let path = dir.join("campaign.conf");
    std::fs::write(
        &path,
        "episodes = 4\nsamples = 120\nthreads = 2\nseed = 91\n\
         devices = raspberry_pi_4, odroid_xu4\nfreezing = on, off\n\
         [reward balanced]\nalpha = 1.0\nbeta = 1.0\n",
    )
    .unwrap();
    path
}

fn run_with_env(binary: &str, args: &[&str], cwd: &Path, envs: &[(&str, &str)]) -> Output {
    let mut command = Command::new(binary);
    command
        .args(args)
        .current_dir(cwd)
        // the coordinator resolves its worker binary relative to itself;
        // under the test harness the two binaries live in different
        // target subdirectories, so point it explicitly
        .env("FAHANA_CAMPAIGN_BIN", env!("CARGO_BIN_EXE_fahana-campaign"));
    for (key, value) in envs {
        command.env(key, value);
    }
    command
        .output()
        .unwrap_or_else(|e| panic!("cannot run {binary}: {e}"))
}

fn run_ok_with_env(
    binary: &str,
    args: &[&str],
    cwd: &Path,
    envs: &[(&str, &str)],
) -> (String, String) {
    let output = run_with_env(binary, args, cwd, envs);
    assert!(
        output.status.success(),
        "{binary} {args:?} failed with {}\nstderr: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

fn run_ok(binary: &str, args: &[&str], cwd: &Path) -> (String, String) {
    run_ok_with_env(binary, args, cwd, &[])
}

/// Runs the single-process reference (canonical report + snapshot) the
/// recovered coordinator runs are diffed against.
fn run_reference(dir: &Path, config: &str) {
    run_ok(
        env!("CARGO_BIN_EXE_fahana-campaign"),
        &[
            "--config",
            config,
            "--canonical",
            "--out",
            "single",
            "--cache-out",
            "single.fsnap",
        ],
        dir,
    );
}

/// Asserts the coordinator's merged artifacts in `dir` are byte-identical
/// to the single-process reference from [`run_reference`].
fn assert_recovered_bit_identical(dir: &Path) {
    assert_eq!(
        std::fs::read(dir.join("single/campaign.json")).unwrap(),
        std::fs::read(dir.join("recovered/campaign.json")).unwrap(),
        "recovered canonical report must equal the single-process one"
    );
    assert_eq!(
        std::fs::read(dir.join("single.fsnap")).unwrap(),
        std::fs::read(dir.join("recovered.fsnap")).unwrap(),
        "recovered merged snapshot must be bit-identical"
    );
}

#[test]
fn coordinator_spawns_workers_and_merges_bit_identically() {
    let dir = temp_dir("merge");
    let config = write_config(&dir);
    let config = config.to_str().unwrap();
    let campaign_bin = env!("CARGO_BIN_EXE_fahana-campaign");
    let shard_bin = env!("CARGO_BIN_EXE_fahana-shard");

    // reference: one process runs the whole grid
    run_ok(
        campaign_bin,
        &[
            "--config",
            config,
            "--canonical",
            "--out",
            "single",
            "--cache-out",
            "single.fsnap",
        ],
        &dir,
    );

    // sharded: 3 worker processes, merged by the coordinator
    let (stdout, stderr) = run_ok(
        shard_bin,
        &[
            "--config",
            config,
            "--shards",
            "3",
            "--canonical",
            "--out",
            "sharded",
            "--cache-out",
            "merged.fsnap",
            "--store",
            "store",
            "--store-id",
            "merged",
            "--trace-out",
            "coordinator-trace.jsonl",
            "--json",
        ],
        &dir,
    );
    assert!(stderr.contains("merged 3 partial reports"), "{stderr}");
    // one structured stderr line per reaped attempt: 3 shards, all ok
    for shard in 1..=3 {
        assert!(
            stderr.contains(&format!(
                "attempt: task=shard-{shard} attempt=1/2 outcome=ok"
            )),
            "{stderr}"
        );
    }

    // the trace sink recorded each attempt and the wave, and (since the
    // merged artifacts below are diffed against an untraced single run)
    // tracing the coordinator demonstrably stayed a side channel
    let trace = std::fs::read_to_string(dir.join("coordinator-trace.jsonl")).unwrap();
    let mut attempts = 0;
    let mut waves = 0;
    for line in trace.lines() {
        let record = Json::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        match record.get("name").unwrap().as_str().unwrap() {
            "shard_attempt" => {
                attempts += 1;
                let fields = record.get("fields").unwrap();
                assert_eq!(fields.get("outcome").unwrap().as_str(), Some("ok"));
                assert!(record.get("dur_ms").unwrap().as_f64().unwrap() > 0.0);
            }
            "shard_wave" => {
                waves += 1;
                let fields = record.get("fields").unwrap();
                assert_eq!(fields.get("wave").unwrap().as_str(), Some("initial"));
                assert_eq!(fields.get("tasks").unwrap().as_i64(), Some(3));
                assert_eq!(fields.get("exhausted").unwrap().as_i64(), Some(0));
            }
            other => panic!("unexpected trace record `{other}`: {line}"),
        }
    }
    assert_eq!(attempts, 3, "{trace}");
    assert_eq!(waves, 1, "{trace}");

    // the merged canonical report is byte-identical to the single run's
    let single = std::fs::read(dir.join("single/campaign.json")).unwrap();
    let sharded = std::fs::read(dir.join("sharded/campaign.json")).unwrap();
    assert_eq!(
        single, sharded,
        "sharded(3) canonical report must equal the single-process one"
    );
    // and so is the merged cache snapshot
    let single_snap = std::fs::read(dir.join("single.fsnap")).unwrap();
    let merged_snap = std::fs::read(dir.join("merged.fsnap")).unwrap();
    assert_eq!(
        single_snap, merged_snap,
        "merged snapshot must be bit-identical"
    );

    // --json printed the same merged report
    assert_eq!(stdout.trim_end_matches('\n').as_bytes(), &sharded[..]);
    let parsed = CampaignReport::parse(stdout.trim()).unwrap();
    assert_eq!(parsed.scenarios.len(), 4);

    // the merged report was ingested into the store and answers queries
    assert!(dir.join("store/artifacts/merged.json").exists());
    let store = ArtifactStore::open(dir.join("store")).unwrap();
    let answer = store.query(&fahana_runtime::StoreQuery::default()).unwrap();
    assert_eq!(answer.campaigns_consulted, 1);
    assert_eq!(answer.scenarios_matched, 4);

    // partials were cleaned up (no --keep-partials)
    assert!(!dir.join("sharded/shards").exists());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn coordinator_publishes_into_a_live_daemon_over_keep_alive() {
    let dir = temp_dir("ingest-url");
    let config = write_config(&dir);
    let config = config.to_str().unwrap();
    let shard_bin = env!("CARGO_BIN_EXE_fahana-shard");

    // a live fahana-serve over an empty store
    let store_root = dir.join("serve-store");
    let view = StoreView::open(ArtifactStore::open(&store_root).unwrap()).unwrap();
    let server = Server::bind("127.0.0.1:0", view, 2).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let runner = std::thread::spawn(move || server.run().unwrap());

    let (_, stderr) = run_ok(
        shard_bin,
        &[
            "--config",
            config,
            "--shards",
            "2",
            "--out",
            "sharded",
            "--store-id",
            "over-http",
            "--ingest-url",
            &addr.to_string(),
            "--keep-partials",
        ],
        &dir,
    );
    assert!(
        stderr.contains("published merged campaign as `over-http`"),
        "{stderr}"
    );
    // --keep-partials leaves the per-attempt working directories behind
    assert!(dir
        .join("sharded/shards/shard-1.attempt-1/campaign.json")
        .exists());
    assert!(dir
        .join("sharded/shards/shard-2.attempt-1/cache.fsnap")
        .exists());

    // the daemon holds the merged campaign durably
    assert!(store_root.join("artifacts/over-http.json").exists());
    let report = CampaignReport::parse(
        &std::fs::read_to_string(store_root.join("artifacts/over-http.json")).unwrap(),
    )
    .unwrap();
    assert_eq!(report.scenarios.len(), 4);
    let catalog =
        Json::parse(&std::fs::read_to_string(store_root.join("catalog.json")).unwrap()).unwrap();
    assert_eq!(catalog.get("campaigns").unwrap().as_arr().unwrap().len(), 1);

    handle.shutdown();
    runner.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// The standard recovery-run arguments: 3 workers, canonical output into
/// `recovered/`, merged snapshot to `recovered.fsnap`.
fn recovery_args(config: &str) -> Vec<&str> {
    vec![
        "--config",
        config,
        "--shards",
        "3",
        "--canonical",
        "--out",
        "recovered",
        "--cache-out",
        "recovered.fsnap",
    ]
}

#[test]
fn crashed_worker_is_retried_and_the_merge_is_bit_identical() {
    let dir = temp_dir("retry");
    let config = write_config(&dir);
    let config = config.to_str().unwrap();
    run_reference(&dir, config);

    // worker 2 crashes at spawn on its first attempt (the marker file
    // makes the injection fire exactly once); the retry must recover
    let marker = dir.join("fail-once.marker");
    let (_, stderr) = run_ok_with_env(
        env!("CARGO_BIN_EXE_fahana-shard"),
        &recovery_args(config),
        &dir,
        &[
            ("FAHANA_TEST_FAIL_SHARD", "2"),
            ("FAHANA_TEST_FAIL_MARKER", marker.to_str().unwrap()),
        ],
    );
    assert!(marker.exists(), "the injected crash never fired");
    assert!(
        stderr.contains("shard-2 attempt 1 of 2 failed, retrying"),
        "{stderr}"
    );
    assert!(stderr.contains("merged 3 partial reports"), "{stderr}");
    assert_recovered_bit_identical(&dir);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn persistently_failing_shard_is_rebalanced_bit_identically() {
    let dir = temp_dir("rebalance");
    let config = write_config(&dir);
    let config = config.to_str().unwrap();
    run_reference(&dir, config);

    // no marker: worker 2 crashes on every hash-mode attempt, so its cell
    // must be rebalanced to an explicit-assignment replacement worker
    // (which the injection, keyed on the hash index, leaves alone)
    let (_, stderr) = run_ok_with_env(
        env!("CARGO_BIN_EXE_fahana-shard"),
        &recovery_args(config),
        &dir,
        &[("FAHANA_TEST_FAIL_SHARD", "2")],
    );
    assert!(stderr.contains("shard-2 failed all 2 attempts"), "{stderr}");
    assert!(
        stderr.contains("rebalancing 1 unfinished cells across 1 replacement workers"),
        "{stderr}"
    );
    assert!(stderr.contains("merged 3 partial reports"), "{stderr}");
    assert_recovered_bit_identical(&dir);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn complete_artifacts_of_a_failed_attempt_are_merged_exactly_once() {
    let dir = temp_dir("after-write");
    let config = write_config(&dir);
    let config = config.to_str().unwrap();
    run_reference(&dir, config);

    // the regression from the pre-fault-tolerance coordinator: worker 2's
    // first attempt writes its full report and snapshot and *then* exits
    // non-zero — the retry must not merge that shard's artifacts twice
    // (per-attempt directories make the winning attempt the only merge
    // input; a double merge would fail with a duplicate-scenario error)
    let marker = dir.join("fail-after-write.marker");
    // --keep-partials keeps the attempt directories around so the test
    // can prove the failed attempt really left complete artifacts behind
    let mut args = recovery_args(config);
    args.push("--keep-partials");
    let (_, stderr) = run_ok_with_env(
        env!("CARGO_BIN_EXE_fahana-shard"),
        &args,
        &dir,
        &[
            ("FAHANA_TEST_FAIL_SHARD", "2"),
            ("FAHANA_TEST_FAIL_MARKER", marker.to_str().unwrap()),
            ("FAHANA_TEST_FAIL_POINT", "after-write"),
        ],
    );
    assert!(
        dir.join("recovered/shards/shard-2.attempt-1/campaign.json")
            .exists(),
        "the failed attempt should have written a complete report"
    );
    assert!(stderr.contains("merged 3 partial reports"), "{stderr}");
    assert_recovered_bit_identical(&dir);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_report_from_a_lying_worker_is_retried_not_a_merge_error() {
    let dir = temp_dir("torn");
    let config = write_config(&dir);
    let config = config.to_str().unwrap();
    run_reference(&dir, config);

    // worker 2's first attempt exits 0 but leaves a truncated
    // campaign.json (what a mid-write kill produced before report writes
    // became atomic): the coordinator must diagnose the torn report as a
    // failed attempt and retry, never hand it to the merge
    let marker = dir.join("fail-torn.marker");
    let (_, stderr) = run_ok_with_env(
        env!("CARGO_BIN_EXE_fahana-shard"),
        &recovery_args(config),
        &dir,
        &[
            ("FAHANA_TEST_FAIL_SHARD", "2"),
            ("FAHANA_TEST_FAIL_MARKER", marker.to_str().unwrap()),
            ("FAHANA_TEST_FAIL_POINT", "torn-report"),
        ],
    );
    assert!(
        stderr.contains("shard-2 attempt 1 of 2 failed, retrying"),
        "{stderr}"
    );
    assert!(!stderr.contains("merge failed"), "{stderr}");
    assert_recovered_bit_identical(&dir);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exhausted_retries_and_rebalancing_name_the_never_completed_cells() {
    let dir = temp_dir("exhausted");
    let config = write_config(&dir);
    let config = config.to_str().unwrap();

    // worker 2 and every explicit-assignment replacement crash on every
    // attempt: recovery is impossible, and the coordinator must say
    // exactly which cells are missing rather than emit partial output
    let output = run_with_env(
        env!("CARGO_BIN_EXE_fahana-shard"),
        &recovery_args(config),
        &dir,
        &[("FAHANA_TEST_FAIL_SHARD", "2,cells")],
    );
    assert!(
        !output.status.success(),
        "an unrecoverable campaign must not exit 0"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("rebalancing 1 unfinished cells"),
        "{stderr}"
    );
    assert!(
        stderr.contains(
            "1 cells never completed after 2 attempts and rebalancing: \
                         raspberry_pi_4/balanced/frozen"
        ),
        "{stderr}"
    );
    // no merged artifacts appear on a failed run
    assert!(!dir.join("recovered/campaign.json").exists());
    assert!(!dir.join("recovered.fsnap").exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn explicit_cell_assignments_run_the_named_cells_bit_identically() {
    let dir = temp_dir("cells");
    let config = write_config(&dir);
    let config = config.to_str().unwrap();
    let campaign_bin = env!("CARGO_BIN_EXE_fahana-campaign");

    // reference: shard 1/3 via the hash partition (two cells)
    run_ok(
        campaign_bin,
        &[
            "--config",
            config,
            "--shard",
            "1/3",
            "--canonical",
            "--out",
            "hash",
        ],
        &dir,
    );
    // the same two cells as an explicit assignment file, listed out of
    // plan order and with comments — the worker must normalize and match
    std::fs::write(
        dir.join("assignment.cells"),
        "# shard 1/3's cells, listed backwards\n\
         odroid_xu4/balanced/full\n\
         odroid_xu4/balanced/frozen\n",
    )
    .unwrap();
    let (_, stderr) = run_ok(
        campaign_bin,
        &[
            "--config",
            config,
            "--cells",
            "assignment.cells",
            "--canonical",
            "--out",
            "explicit",
        ],
        &dir,
    );
    assert!(
        stderr.contains("explicit assignment (2 cells): running 2 of 4 scenarios"),
        "{stderr}"
    );
    assert_eq!(
        std::fs::read(dir.join("hash/campaign.json")).unwrap(),
        std::fs::read(dir.join("explicit/campaign.json")).unwrap(),
        "explicit assignment must reproduce the hash slice byte-for-byte"
    );

    // a cell outside the plan is rejected up front
    std::fs::write(dir.join("bogus.cells"), "desktop/balanced/full\n").unwrap();
    let output = run_with_env(
        campaign_bin,
        &["--config", config, "--cells", "bogus.cells"],
        &dir,
        &[],
    );
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("not part of the campaign plan"), "{stderr}");

    // --shard and --cells are mutually exclusive
    let output = run_with_env(
        campaign_bin,
        &[
            "--config",
            config,
            "--shard",
            "1/3",
            "--cells",
            "assignment.cells",
        ],
        &dir,
        &[],
    );
    assert!(!output.status.success());
    std::fs::remove_dir_all(&dir).ok();
}
