//! End-to-end tests for the `fahana-shard` coordinator: real worker
//! processes spawned over a real config, partial reports and cache
//! snapshots merged, the result published into an artifact store and into
//! a live `fahana-serve` daemon — and the merged artifacts compared
//! byte-for-byte against a single-process run (what the CI sharded smoke
//! job re-checks with `diff`).

use std::path::{Path, PathBuf};
use std::process::Command;

use fahana_runtime::{ArtifactStore, CampaignReport, Json, Server, StoreView};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fahana-shard-e2e-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A 4-scenario grid (2 devices × 1 reward × freezing on/off) small
/// enough for several process spawns per test.
fn write_config(dir: &Path) -> PathBuf {
    let path = dir.join("campaign.conf");
    std::fs::write(
        &path,
        "episodes = 4\nsamples = 120\nthreads = 2\nseed = 91\n\
         devices = raspberry_pi_4, odroid_xu4\nfreezing = on, off\n\
         [reward balanced]\nalpha = 1.0\nbeta = 1.0\n",
    )
    .unwrap();
    path
}

fn run_ok(binary: &str, args: &[&str], cwd: &Path) -> (String, String) {
    let output = Command::new(binary)
        .args(args)
        .current_dir(cwd)
        // the coordinator resolves its worker binary relative to itself;
        // under the test harness the two binaries live in different
        // target subdirectories, so point it explicitly
        .env("FAHANA_CAMPAIGN_BIN", env!("CARGO_BIN_EXE_fahana-campaign"))
        .output()
        .unwrap_or_else(|e| panic!("cannot run {binary}: {e}"));
    assert!(
        output.status.success(),
        "{binary} {args:?} failed with {}\nstderr: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn coordinator_spawns_workers_and_merges_bit_identically() {
    let dir = temp_dir("merge");
    let config = write_config(&dir);
    let config = config.to_str().unwrap();
    let campaign_bin = env!("CARGO_BIN_EXE_fahana-campaign");
    let shard_bin = env!("CARGO_BIN_EXE_fahana-shard");

    // reference: one process runs the whole grid
    run_ok(
        campaign_bin,
        &[
            "--config",
            config,
            "--canonical",
            "--out",
            "single",
            "--cache-out",
            "single.fsnap",
        ],
        &dir,
    );

    // sharded: 3 worker processes, merged by the coordinator
    let (stdout, stderr) = run_ok(
        shard_bin,
        &[
            "--config",
            config,
            "--shards",
            "3",
            "--canonical",
            "--out",
            "sharded",
            "--cache-out",
            "merged.fsnap",
            "--store",
            "store",
            "--store-id",
            "merged",
            "--json",
        ],
        &dir,
    );
    assert!(stderr.contains("merged 3 partial reports"), "{stderr}");

    // the merged canonical report is byte-identical to the single run's
    let single = std::fs::read(dir.join("single/campaign.json")).unwrap();
    let sharded = std::fs::read(dir.join("sharded/campaign.json")).unwrap();
    assert_eq!(
        single, sharded,
        "sharded(3) canonical report must equal the single-process one"
    );
    // and so is the merged cache snapshot
    let single_snap = std::fs::read(dir.join("single.fsnap")).unwrap();
    let merged_snap = std::fs::read(dir.join("merged.fsnap")).unwrap();
    assert_eq!(
        single_snap, merged_snap,
        "merged snapshot must be bit-identical"
    );

    // --json printed the same merged report
    assert_eq!(stdout.trim_end_matches('\n').as_bytes(), &sharded[..]);
    let parsed = CampaignReport::parse(stdout.trim()).unwrap();
    assert_eq!(parsed.scenarios.len(), 4);

    // the merged report was ingested into the store and answers queries
    assert!(dir.join("store/artifacts/merged.json").exists());
    let store = ArtifactStore::open(dir.join("store")).unwrap();
    let answer = store.query(&fahana_runtime::StoreQuery::default()).unwrap();
    assert_eq!(answer.campaigns_consulted, 1);
    assert_eq!(answer.scenarios_matched, 4);

    // partials were cleaned up (no --keep-partials)
    assert!(!dir.join("sharded/shards").exists());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn coordinator_publishes_into_a_live_daemon_over_keep_alive() {
    let dir = temp_dir("ingest-url");
    let config = write_config(&dir);
    let config = config.to_str().unwrap();
    let shard_bin = env!("CARGO_BIN_EXE_fahana-shard");

    // a live fahana-serve over an empty store
    let store_root = dir.join("serve-store");
    let view = StoreView::open(ArtifactStore::open(&store_root).unwrap()).unwrap();
    let server = Server::bind("127.0.0.1:0", view, 2).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let runner = std::thread::spawn(move || server.run().unwrap());

    let (_, stderr) = run_ok(
        shard_bin,
        &[
            "--config",
            config,
            "--shards",
            "2",
            "--out",
            "sharded",
            "--store-id",
            "over-http",
            "--ingest-url",
            &addr.to_string(),
            "--keep-partials",
        ],
        &dir,
    );
    assert!(
        stderr.contains("published merged campaign as `over-http`"),
        "{stderr}"
    );
    // --keep-partials leaves the per-shard working directories behind
    assert!(dir.join("sharded/shards/shard-1/campaign.json").exists());
    assert!(dir.join("sharded/shards/shard-2/cache.fsnap").exists());

    // the daemon holds the merged campaign durably
    assert!(store_root.join("artifacts/over-http.json").exists());
    let report = CampaignReport::parse(
        &std::fs::read_to_string(store_root.join("artifacts/over-http.json")).unwrap(),
    )
    .unwrap();
    assert_eq!(report.scenarios.len(), 4);
    let catalog =
        Json::parse(&std::fs::read_to_string(store_root.join("catalog.json")).unwrap()).unwrap();
    assert_eq!(catalog.get("campaigns").unwrap().as_arr().unwrap().len(), 1);

    handle.shutdown();
    runner.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
