//! Concurrent-ingest stress tests for the artifact store: N threads
//! hammering one store must never produce duplicate ids, a torn
//! `catalog.json`, or an unparseable catalog — under *every*
//! interleaving, including ingests racing each other and readers racing
//! the atomic catalog rename.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use edgehw::DeviceKind;
use fahana_runtime::{
    campaign_json, ArtifactStore, CampaignConfig, CampaignEngine, Json, RewardSetting, StoreError,
};

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("fahana-stress-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    root
}

fn tiny_report(seed: u64) -> String {
    let outcome = CampaignEngine::new(CampaignConfig {
        episodes: 3,
        samples: 120,
        threads: 2,
        seed,
        devices: vec![DeviceKind::RaspberryPi4],
        rewards: vec![RewardSetting::balanced()],
        freezing: vec![true],
        ..CampaignConfig::default()
    })
    .unwrap()
    .run()
    .unwrap();
    campaign_json(&outcome)
}

#[test]
fn concurrent_ingests_never_tear_the_catalog() {
    const THREADS: usize = 8;
    const INGESTS_PER_THREAD: usize = 4;

    let root = temp_root("torn");
    let store = ArtifactStore::open(&root).unwrap();
    let report = Arc::new(tiny_report(70));

    // a reader thread races every catalog rebuild: whatever instant it
    // samples catalog.json at, the document must parse — the atomic
    // rename guarantees no torn intermediate state is ever observable
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let stop = Arc::clone(&stop);
        let catalog_path = root.join("catalog.json");
        std::thread::spawn(move || {
            let mut observations = 0usize;
            while !stop.load(Ordering::Acquire) {
                if let Ok(text) = std::fs::read_to_string(&catalog_path) {
                    Json::parse(&text).unwrap_or_else(|e| {
                        panic!("torn catalog observed after {observations} good reads: {e}\n{text}")
                    });
                    observations += 1;
                }
                std::thread::yield_now();
            }
            observations
        })
    };

    let writers: Vec<_> = (0..THREADS)
        .map(|thread| {
            let store = store.clone();
            let report = Arc::clone(&report);
            std::thread::spawn(move || {
                for ingest in 0..INGESTS_PER_THREAD {
                    store
                        .ingest(&format!("t{thread}-r{ingest}"), &report)
                        .unwrap();
                }
            })
        })
        .collect();
    for writer in writers {
        writer.join().unwrap();
    }
    stop.store(true, Ordering::Release);
    let observations = reader.join().unwrap();
    assert!(observations > 0, "the reader never saw a catalog");

    // every ingest landed exactly once, ids are unique
    let campaigns = store.campaigns().unwrap();
    assert_eq!(campaigns.len(), THREADS * INGESTS_PER_THREAD);
    let mut ids: Vec<&str> = campaigns.iter().map(|c| c.id.as_str()).collect();
    ids.dedup();
    assert_eq!(ids.len(), THREADS * INGESTS_PER_THREAD, "duplicate ids");

    // the final catalog is parseable and lists every campaign
    let catalog = std::fs::read_to_string(root.join("catalog.json")).unwrap();
    let parsed = Json::parse(&catalog).unwrap();
    assert_eq!(
        parsed.get("campaigns").unwrap().as_arr().unwrap().len(),
        THREADS * INGESTS_PER_THREAD
    );

    // no staging residue survived the stampede
    let leftovers: Vec<String> = std::fs::read_dir(&root)
        .unwrap()
        .flatten()
        .chain(std::fs::read_dir(root.join("artifacts")).unwrap().flatten())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.ends_with(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "tmp residue: {leftovers:?}");

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn racing_ingests_on_one_id_elect_exactly_one_winner() {
    const CONTENDERS: usize = 8;

    let root = temp_root("one-id");
    let store = ArtifactStore::open(&root).unwrap();
    // every contender carries *different* bytes, so a loser clobbering the
    // winner's published artifact (e.g. via a shared staging file) is
    // detectable, not masked by identical content
    let base = tiny_report(71);
    assert!(base.contains(r#""threads":2"#), "fixture drifted");
    let reports: Vec<String> = (0..CONTENDERS)
        .map(|i| base.replace(r#""threads":2"#, &format!(r#""threads":{}"#, i + 2)))
        .collect();

    let contenders: Vec<_> = reports
        .iter()
        .map(|report| {
            let store = store.clone();
            let report = report.clone();
            std::thread::spawn(move || store.ingest("contested", &report))
        })
        .collect();
    let outcomes: Vec<_> = contenders.into_iter().map(|t| t.join().unwrap()).collect();

    let winners: Vec<usize> = outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| o.is_ok())
        .map(|(i, _)| i)
        .collect();
    assert_eq!(winners.len(), 1, "exactly one ingest may claim an id");
    for outcome in &outcomes {
        if let Err(error) = outcome {
            assert_eq!(*error, StoreError::DuplicateId("contested".into()));
        }
    }

    // the published artifact holds the winner's bytes, verbatim — losers
    // must not have truncated or rewritten it
    let on_disk = std::fs::read_to_string(root.join("artifacts").join("contested.json")).unwrap();
    assert_eq!(
        on_disk, reports[winners[0]],
        "winner's artifact was clobbered"
    );

    // the single artifact is complete and parseable, catalog agrees
    let campaigns = store.campaigns().unwrap();
    assert_eq!(campaigns.len(), 1);
    assert_eq!(campaigns[0].id, "contested");
    let catalog = std::fs::read_to_string(root.join("catalog.json")).unwrap();
    assert_eq!(
        Json::parse(&catalog)
            .unwrap()
            .get("campaigns")
            .unwrap()
            .as_arr()
            .unwrap()
            .len(),
        1
    );

    std::fs::remove_dir_all(&root).ok();
}
