//! Concurrency tests for the serve layer: readers hammering a daemon
//! while a writer ingests must never see bytes from the wrong store
//! generation, saturation must shed load with 503 + `Retry-After`, and a
//! slowloris peer must be cut off with 408 at the read deadline.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use edgehw::DeviceKind;
use fahana_runtime::serve::client_exchange;
use fahana_runtime::{
    campaign_json, ArtifactStore, CampaignConfig, CampaignEngine, Json, RewardSetting,
    ServeOptions, Server, ServerHandle, StoreView,
};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fahana-serve-load-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn tiny_report(seed: u64) -> String {
    let outcome = CampaignEngine::new(CampaignConfig {
        episodes: 4,
        samples: 120,
        threads: 2,
        seed,
        devices: vec![DeviceKind::RaspberryPi4],
        rewards: vec![RewardSetting::balanced()],
        freezing: vec![true],
        ..CampaignConfig::default()
    })
    .unwrap()
    .run()
    .unwrap();
    campaign_json(&outcome)
}

fn start_server(
    store_root: &PathBuf,
    options: ServeOptions,
) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    let store = ArtifactStore::open(store_root).unwrap();
    let view = StoreView::open(store).unwrap();
    let server = Server::bind_with("127.0.0.1:0", view, options).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let runner = std::thread::spawn(move || server.run().unwrap());
    (addr, handle, runner)
}

/// One raw exchange: write `head` + `body`, shut down the write side, read
/// everything. Returns the raw response text (may be empty if the server
/// closed without answering).
fn raw_exchange(addr: SocketAddr, head: &str, body: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    stream.shutdown(std::net::Shutdown::Write).ok();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    String::from_utf8(raw).unwrap()
}

fn status_of(raw: &str) -> u16 {
    raw.split(' ').nth(1).unwrap_or("0").parse().unwrap_or(0)
}

/// The tentpole guarantee, under fire: 8 keep-alive readers hammer
/// `/query` and `/catalog` while one writer publishes campaigns through
/// `POST /ingest`. Every response must be byte-identical to a fresh
/// render at the generation it claims (via `X-Fahana-Generation`) to have
/// been served from — the cache may go stale-and-flush internally, but it
/// must never *serve* stale-generation bytes.
#[test]
fn concurrent_readers_never_observe_stale_generation_bytes() {
    const READERS: usize = 8;
    const INGESTS: u64 = 4;
    const TARGETS: [&str; 2] = ["/query?device=raspberry_pi_4", "/catalog"];

    let dir = temp_dir("stale");
    let base = tiny_report(100);
    let reports: Vec<String> = (1..=INGESTS).map(|i| tiny_report(100 + i)).collect();

    // Phase 1: a mirror server with caching disabled renders the expected
    // bytes for every (generation, target) pair — same base campaign, same
    // reports, same ingest order as the live run below.
    let mirror_root = dir.join("mirror");
    ArtifactStore::open(&mirror_root)
        .unwrap()
        .ingest("base", &base)
        .unwrap();
    let (mirror_addr, mirror_handle, mirror_runner) = start_server(
        &mirror_root,
        ServeOptions {
            threads: 2,
            cache_capacity: 0,
            ..ServeOptions::default()
        },
    );
    let mut expected: HashMap<(u64, &str), String> = HashMap::new();
    {
        let mut stream = TcpStream::connect(mirror_addr).unwrap();
        for step in 0..=INGESTS {
            for target in TARGETS {
                let response = client_exchange(&mut stream, "GET", target, &[]).unwrap();
                assert_eq!(response.status, 200, "{target}: {}", response.body);
                let generation = response.generation().expect("read responses are tagged");
                assert_eq!(generation, step, "one ingest bumps one generation");
                expected.insert((generation, target), response.body);
            }
            if step < INGESTS {
                let id = format!("/ingest?id=w{}", step + 1);
                let response =
                    client_exchange(&mut stream, "POST", &id, reports[step as usize].as_bytes())
                        .unwrap();
                assert_eq!(response.status, 201, "{}", response.body);
            }
        }
    }
    mirror_handle.shutdown();
    mirror_runner.join().unwrap();

    // Phase 2: the live run. Each reader keeps one connection alive
    // (reconnecting if the server rotates it) and validates every single
    // response against the mirror's render for the tagged generation.
    let store_root = dir.join("store");
    ArtifactStore::open(&store_root)
        .unwrap()
        .ingest("base", &base)
        .unwrap();
    let (addr, handle, runner) = start_server(
        &store_root,
        ServeOptions {
            threads: READERS + 4,
            cache_capacity: 64,
            ..ServeOptions::default()
        },
    );

    let stop = Arc::new(AtomicBool::new(false));
    let expected = Arc::new(expected);
    let readers: Vec<_> = (0..READERS)
        .map(|index| {
            let stop = Arc::clone(&stop);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut generations_seen = std::collections::BTreeSet::new();
                let mut checked = 0u64;
                let mut connection: Option<TcpStream> = None;
                while !stop.load(Ordering::Acquire) {
                    let stream = match &mut connection {
                        Some(stream) => stream,
                        None => connection.insert(TcpStream::connect(addr).unwrap()),
                    };
                    let target = TARGETS[(index + checked as usize) % TARGETS.len()];
                    match client_exchange(stream, "GET", target, &[]) {
                        Ok(response) => {
                            assert_eq!(response.status, 200, "{target}: {}", response.body);
                            let generation =
                                response.generation().expect("read responses are tagged");
                            let fresh = expected
                                .get(&(generation, target))
                                .unwrap_or_else(|| panic!("unknown generation {generation}"));
                            assert_eq!(
                                &response.body, fresh,
                                "reader {index}: {target} bytes diverge from a fresh \
                                 render at generation {generation}"
                            );
                            generations_seen.insert(generation);
                            checked += 1;
                        }
                        // the server may rotate the connection (request
                        // cap, shutdown race); reconnect and continue
                        Err(_) => connection = None,
                    }
                }
                (checked, generations_seen)
            })
        })
        .collect();

    let writer = {
        let reports = reports.clone();
        std::thread::spawn(move || {
            for (index, report) in reports.iter().enumerate() {
                std::thread::sleep(Duration::from_millis(60));
                let mut stream = TcpStream::connect(addr).unwrap();
                let target = format!("/ingest?id=w{}", index + 1);
                let response =
                    client_exchange(&mut stream, "POST", &target, report.as_bytes()).unwrap();
                assert_eq!(response.status, 201, "{}", response.body);
            }
        })
    };
    writer.join().unwrap();
    // let the readers chew on the final generation before stopping
    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, Ordering::Release);

    let mut total_checked = 0u64;
    let mut all_generations = std::collections::BTreeSet::new();
    for reader in readers {
        let (checked, generations) = reader.join().unwrap();
        assert!(checked > 0, "every reader must get answers");
        total_checked += checked;
        all_generations.extend(generations);
    }
    assert!(
        all_generations.len() >= 2,
        "readers must actually cross a generation bump (saw {all_generations:?})"
    );
    assert!(
        all_generations.contains(&INGESTS),
        "the final generation must be observed (saw {all_generations:?})"
    );

    // the cache did real work under the stampede, and flushed per bump
    let mut stream = TcpStream::connect(addr).unwrap();
    let statusz = client_exchange(&mut stream, "GET", "/statusz", &[]).unwrap();
    let cache = Json::parse(&statusz.body)
        .unwrap()
        .get("cache")
        .expect("statusz reports the cache")
        .clone();
    let hits = cache.get("hits").unwrap().as_i64().unwrap();
    let invalidations = cache.get("invalidations").unwrap().as_i64().unwrap();
    assert!(hits > 0, "no cache hits across {total_checked} reads");
    assert!(
        invalidations >= 1,
        "ingests must have flushed the cache: {}",
        statusz.body
    );
    assert_eq!(
        cache.get("generation").unwrap().as_i64(),
        Some(INGESTS as i64)
    );

    handle.shutdown();
    runner.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// A peer that dribbles half a request line gets `408 Request Timeout` at
/// the read deadline — not a worker pinned forever, and not an instant
/// slam either. A peer that sends *nothing* is closed quietly (no bytes):
/// that is the idle keep-alive path, not an error.
#[test]
fn slowloris_half_request_gets_408_at_the_deadline() {
    let dir = temp_dir("slowloris");
    let store_root = dir.join("store");
    ArtifactStore::open(&store_root).unwrap();
    let (addr, handle, runner) = start_server(
        &store_root,
        ServeOptions {
            threads: 2,
            read_timeout: Duration::from_millis(300),
            ..ServeOptions::default()
        },
    );

    // half a request line, then silence
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"GET /que").unwrap();
    let started = Instant::now();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let elapsed = started.elapsed();
    let raw = String::from_utf8(raw).unwrap();
    assert_eq!(status_of(&raw), 408, "{raw}");
    assert!(
        elapsed >= Duration::from_millis(200),
        "the 408 must come from the deadline, not an eager parser ({elapsed:?})"
    );
    assert!(
        elapsed < Duration::from_secs(8),
        "the deadline must actually fire ({elapsed:?})"
    );

    // zero bytes: a quiet close, not a 408 — this is what an idle
    // kept-alive scraper connection looks like
    let mut idle = TcpStream::connect(addr).unwrap();
    let mut raw = Vec::new();
    idle.read_to_end(&mut raw).unwrap();
    assert!(raw.is_empty(), "{:?}", String::from_utf8_lossy(&raw));

    handle.shutdown();
    runner.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Past `max_inflight` concurrent connections, new ones are turned away
/// at the door with `503` + `Retry-After` — while the connections already
/// in flight keep being served to completion.
#[test]
fn saturation_sheds_load_with_503_and_retry_after() {
    let dir = temp_dir("saturation");
    let store_root = dir.join("store");
    ArtifactStore::open(&store_root).unwrap();
    let (addr, handle, runner) = start_server(
        &store_root,
        ServeOptions {
            threads: 2,
            max_inflight: 1,
            retry_after_secs: 7,
            // this test pins the in-flight gate, not timeouts: connection A
            // deliberately stalls mid-request, and under suite-wide CPU
            // contention the default deadline could 408-close it first
            read_timeout: Duration::from_secs(60),
            ..ServeOptions::default()
        },
    );

    // connection A claims the only slot and stalls mid-request
    let mut held = TcpStream::connect(addr).unwrap();
    held.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
    std::thread::sleep(Duration::from_millis(150));

    // connection B is refused at the door, with the advertised backoff
    let rejected = raw_exchange(
        addr,
        "GET /healthz HTTP/1.1\r\nHost: fahana\r\nConnection: close\r\n\r\n",
        b"",
    );
    assert_eq!(status_of(&rejected), 503, "{rejected}");
    assert!(rejected.contains("Retry-After: 7"), "{rejected}");

    // connection A is unaffected: it finishes its request and is served
    held.write_all(b"Host: fahana\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut raw = Vec::new();
    held.read_to_end(&mut raw).unwrap();
    let raw = String::from_utf8(raw).unwrap();
    assert_eq!(status_of(&raw), 200, "{raw}");

    // with the slot free again, the next connection is served — and the
    // rejection was counted
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let raw = raw_exchange(
            addr,
            "GET /metrics HTTP/1.1\r\nHost: fahana\r\nConnection: close\r\n\r\n",
            b"",
        );
        if status_of(&raw) == 200 {
            assert!(raw.contains("fahana_serve_rejected_total 1"), "{raw}");
            break;
        }
        assert!(Instant::now() < deadline, "slot never freed: {raw}");
        std::thread::sleep(Duration::from_millis(20));
    }

    handle.shutdown();
    runner.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// A declared body larger than `--max-body-bytes` is answered `413`
/// from the headers alone — the server never buffers the oversized body.
#[test]
fn oversized_declared_body_is_rejected_with_413() {
    let dir = temp_dir("body-cap");
    let store_root = dir.join("store");
    ArtifactStore::open(&store_root).unwrap();
    let (addr, handle, runner) = start_server(
        &store_root,
        ServeOptions {
            threads: 2,
            max_body_bytes: 1024,
            ..ServeOptions::default()
        },
    );

    let raw = raw_exchange(
        addr,
        "POST /ingest?id=big HTTP/1.1\r\nHost: fahana\r\nContent-Length: 5000\r\n\r\n",
        b"",
    );
    assert_eq!(status_of(&raw), 413, "{raw}");

    // at the cap is still fine (the limit is a bound, not a cliff)
    let body = vec![b'x'; 1024];
    let raw = raw_exchange(
        addr,
        "POST /ingest?id=ok HTTP/1.1\r\nHost: fahana\r\nContent-Length: 1024\r\n\r\n",
        &body,
    );
    // garbage JSON, but it got past the size gate and was parsed
    assert_eq!(status_of(&raw), 400, "{raw}");
    assert!(!raw.contains("413"), "{raw}");

    handle.shutdown();
    runner.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
