//! Golden-file tests for the campaign/scenario JSON report schema.
//!
//! The committed fixtures under `tests/fixtures/` pin the exact bytes the
//! renderer produces for a deterministic campaign (wall-clock fields are
//! normalised to constants — they are the only nondeterministic fields).
//! Any schema change shows up as a fixture diff; regenerate deliberately
//! with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p fahana-runtime --test report_schema
//! ```
//!
//! and commit the new fixtures.

use std::path::PathBuf;

use fahana_runtime::{
    CampaignConfig, CampaignEngine, CampaignReport, RewardSetting, ScenarioReport,
};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// A small, fully deterministic campaign: fixed seed, one worker thread
/// (so shared-cache hit/miss counters cannot race), wall-clock normalised.
fn golden_report() -> CampaignReport {
    let outcome = CampaignEngine::new(CampaignConfig {
        episodes: 4,
        samples: 120,
        threads: 1,
        seed: 2022,
        devices: vec![
            edgehw::DeviceKind::RaspberryPi4,
            edgehw::DeviceKind::OdroidXu4,
        ],
        rewards: vec![RewardSetting::balanced()],
        freezing: vec![true, false],
        ..CampaignConfig::default()
    })
    .unwrap()
    .run()
    .unwrap();
    let mut report = CampaignReport::from_outcome(&outcome);
    report.wall_clock_ms = 1234.5;
    for scenario in &mut report.scenarios {
        scenario.wall_clock_ms = 250.125;
    }
    report
}

fn check_golden(name: &str, rendered: &str) {
    let path = fixture_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let fixture = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}) — generate it with UPDATE_GOLDEN=1 cargo test -p \
             fahana-runtime --test report_schema",
            path.display()
        )
    });
    assert_eq!(
        rendered, fixture,
        "report schema drifted from {name} — if intentional, regenerate with UPDATE_GOLDEN=1",
    );
}

#[test]
fn campaign_report_matches_the_golden_file() {
    check_golden("campaign_golden.json", &golden_report().to_json().render());
}

#[test]
fn scenario_report_matches_the_golden_file() {
    let report = golden_report();
    check_golden(
        "scenario_golden.json",
        &report.scenarios[0].to_json().render(),
    );
}

#[test]
fn campaign_golden_file_round_trips_byte_identically() {
    let fixture = std::fs::read_to_string(fixture_path("campaign_golden.json")).unwrap();
    let parsed = CampaignReport::parse(&fixture).expect("golden file must parse");
    assert_eq!(
        parsed.to_json().render(),
        fixture,
        "render → parse → re-render must be byte-identical"
    );
    // headline structure sanity: 2 devices × 1 reward × 2 freezing modes
    assert_eq!(parsed.scenarios.len(), 4);
    assert!(parsed
        .scenarios
        .iter()
        .any(|s| s.device_slug == "odroid_xu4"));
    assert!(parsed.scenarios.iter().all(|s| s.episodes == 4));
}

#[test]
fn scenario_golden_file_round_trips_byte_identically() {
    let fixture = std::fs::read_to_string(fixture_path("scenario_golden.json")).unwrap();
    let parsed = ScenarioReport::parse(&fixture).expect("golden file must parse");
    assert_eq!(parsed.to_json().render(), fixture);
    assert_eq!(parsed.device_slug, "raspberry_pi_4");
    assert_eq!(parsed.reward, "balanced");
    assert!(parsed.use_freezing);
}

#[test]
fn freshly_rendered_reports_round_trip_byte_identically() {
    // independent of the fixtures: whatever the renderer emits right now
    // must parse back and re-render to the same bytes (wall-clock values
    // included, no normalisation)
    let outcome = CampaignEngine::new(CampaignConfig {
        episodes: 3,
        samples: 120,
        threads: 2,
        devices: vec![edgehw::DeviceKind::RaspberryPi4],
        rewards: vec![RewardSetting::fairness_heavy()],
        freezing: vec![true],
        ..CampaignConfig::default()
    })
    .unwrap()
    .run()
    .unwrap();

    let campaign_text = fahana_runtime::campaign_json(&outcome);
    let parsed = CampaignReport::parse(&campaign_text).unwrap();
    assert_eq!(parsed.to_json().render(), campaign_text);

    let scenario_text = fahana_runtime::scenario_json(&outcome.scenarios[0]);
    let parsed = ScenarioReport::parse(&scenario_text).unwrap();
    assert_eq!(parsed.to_json().render(), scenario_text);
}
