//! In-memory dataset container, splits and tensor export.

use ftensor::{SeededRng, Tensor};
use serde::{Deserialize, Serialize};

use crate::sample::{Group, Sample};
use crate::stats::DatasetStats;

/// An in-memory labelled, group-annotated image dataset.
///
/// The dataset knows its class and group cardinality so that fairness
/// metrics can always iterate over *all* groups, including groups that an
/// unlucky subset might not contain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    samples: Vec<Sample>,
    classes: usize,
    groups: usize,
}

/// The train/validation/test split used by the search (60/20/20 in the
/// paper's Section 4.1-B).
#[derive(Debug, Clone)]
pub struct DatasetSplit {
    /// Training portion.
    pub train: Dataset,
    /// Validation portion (used to compute rewards during the search).
    pub validation: Dataset,
    /// Held-out test portion (used for the final comparison tables).
    pub test: Dataset,
}

impl Dataset {
    /// Creates a dataset from samples and its class/group cardinality.
    pub fn new(samples: Vec<Sample>, classes: usize, groups: usize) -> Self {
        Dataset {
            samples,
            classes,
            groups,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Number of demographic groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Read access to the samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Appends samples (used by data balancing).
    pub fn extend_samples<I: IntoIterator<Item = Sample>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }

    /// Labels of every sample, in order.
    pub fn labels(&self) -> Vec<usize> {
        self.samples.iter().map(|s| s.label).collect()
    }

    /// Groups of every sample, in order.
    pub fn sample_groups(&self) -> Vec<Group> {
        self.samples.iter().map(|s| s.group).collect()
    }

    /// Descriptive statistics (per-class and per-group counts, imbalance).
    pub fn stats(&self) -> DatasetStats {
        DatasetStats::from_dataset(self)
    }

    /// The subset of samples belonging to `group`, as a new dataset.
    pub fn subset_by_group(&self, group: Group) -> Dataset {
        Dataset {
            samples: self
                .samples
                .iter()
                .filter(|s| s.group == group)
                .cloned()
                .collect(),
            classes: self.classes,
            groups: self.groups,
        }
    }

    /// Flattens the dataset into a feature matrix `(n, 3·size²)` plus labels.
    ///
    /// Returns `None` for an empty dataset or if image sizes are inconsistent.
    pub fn to_feature_matrix(&self) -> Option<(Tensor, Vec<usize>)> {
        let first = self.samples.first()?;
        let width = first.feature_len();
        let mut data = Vec::with_capacity(self.samples.len() * width);
        for sample in &self.samples {
            if sample.feature_len() != width {
                return None;
            }
            data.extend_from_slice(&sample.pixels);
        }
        let features = Tensor::from_vec(data, &[self.samples.len(), width]).ok()?;
        Some((features, self.labels()))
    }

    /// Exports the dataset as an NCHW image tensor plus labels.
    ///
    /// Returns `None` for an empty dataset or inconsistent image sizes.
    pub fn to_image_tensor(&self) -> Option<(Tensor, Vec<usize>)> {
        let first = self.samples.first()?;
        let size = first.size;
        let width = first.feature_len();
        let mut data = Vec::with_capacity(self.samples.len() * width);
        for sample in &self.samples {
            if sample.size != size {
                return None;
            }
            data.extend_from_slice(&sample.pixels);
        }
        let tensor =
            Tensor::from_vec(data, &[self.samples.len(), Sample::CHANNELS, size, size]).ok()?;
        Some((tensor, self.labels()))
    }

    /// Splits the dataset with the paper's 60/20/20 ratio, stratified by
    /// group so that every split contains minority samples.
    pub fn split_default(&self) -> DatasetSplit {
        self.split(0.6, 0.2, 9901)
    }

    /// Splits the dataset into train/validation/test with the given
    /// fractions (test receives the remainder), shuffled with `seed` and
    /// stratified per group.
    pub fn split(&self, train_fraction: f32, validation_fraction: f32, seed: u64) -> DatasetSplit {
        let mut rng = SeededRng::new(seed);
        let mut train = Vec::new();
        let mut validation = Vec::new();
        let mut test = Vec::new();
        for group_id in 0..self.groups.max(1) {
            let mut indices: Vec<usize> = self
                .samples
                .iter()
                .enumerate()
                .filter(|(_, s)| s.group == Group(group_id))
                .map(|(i, _)| i)
                .collect();
            // Fisher–Yates shuffle
            for i in (1..indices.len()).rev() {
                let j = rng.below(i + 1);
                indices.swap(i, j);
            }
            let n = indices.len();
            let n_train = ((n as f32) * train_fraction).round() as usize;
            let n_val = ((n as f32) * validation_fraction).round() as usize;
            for (pos, &idx) in indices.iter().enumerate() {
                let sample = self.samples[idx].clone();
                if pos < n_train {
                    train.push(sample);
                } else if pos < n_train + n_val {
                    validation.push(sample);
                } else {
                    test.push(sample);
                }
            }
        }
        DatasetSplit {
            train: Dataset::new(train, self.classes, self.groups),
            validation: Dataset::new(validation, self.classes, self.groups),
            test: Dataset::new(test, self.classes, self.groups),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{DermatologyConfig, DermatologyGenerator};

    fn dataset(n: usize) -> Dataset {
        DermatologyGenerator::new(DermatologyConfig {
            samples: n,
            image_size: 6,
            ..DermatologyConfig::default()
        })
        .generate()
    }

    #[test]
    fn split_fractions_are_respected_per_group() {
        let data = dataset(500);
        let split = data.split_default();
        let total = split.train.len() + split.validation.len() + split.test.len();
        assert_eq!(total, 500);
        assert!((split.train.len() as f32 / 500.0 - 0.6).abs() < 0.05);
        assert!((split.validation.len() as f32 / 500.0 - 0.2).abs() < 0.05);
        // every split keeps minority samples
        for part in [&split.train, &split.validation, &split.test] {
            assert!(part.samples().iter().any(|s| s.group == Group::DARK_SKIN));
            assert!(part.samples().iter().any(|s| s.group == Group::LIGHT_SKIN));
        }
    }

    #[test]
    fn split_is_deterministic_for_a_seed() {
        let data = dataset(200);
        let a = data.split(0.6, 0.2, 7);
        let b = data.split(0.6, 0.2, 7);
        assert_eq!(a.train.samples()[0], b.train.samples()[0]);
        let c = data.split(0.6, 0.2, 8);
        // a different shuffle seed almost surely changes the first sample
        assert_ne!(
            a.train.samples()[0].pixels,
            c.train.samples()[0].pixels,
            "different seeds should shuffle differently"
        );
    }

    #[test]
    fn subset_by_group_filters_samples() {
        let data = dataset(300);
        let dark = data.subset_by_group(Group::DARK_SKIN);
        assert!(dark.samples().iter().all(|s| s.group == Group::DARK_SKIN));
        assert!(!dark.is_empty());
        assert_eq!(dark.classes(), data.classes());
        let light = data.subset_by_group(Group::LIGHT_SKIN);
        assert_eq!(dark.len() + light.len(), data.len());
    }

    #[test]
    fn feature_matrix_has_expected_shape() {
        let data = dataset(40);
        let (features, labels) = data.to_feature_matrix().unwrap();
        assert_eq!(features.dims(), &[40, 3 * 6 * 6]);
        assert_eq!(labels.len(), 40);
    }

    #[test]
    fn image_tensor_has_expected_shape() {
        let data = dataset(10);
        let (images, labels) = data.to_image_tensor().unwrap();
        assert_eq!(images.dims(), &[10, 3, 6, 6]);
        assert_eq!(labels.len(), 10);
    }

    #[test]
    fn empty_dataset_exports_none() {
        let empty = Dataset::new(Vec::new(), 5, 2);
        assert!(empty.to_feature_matrix().is_none());
        assert!(empty.to_image_tensor().is_none());
        assert!(empty.is_empty());
    }

    #[test]
    fn extend_samples_appends() {
        let mut data = dataset(10);
        let extra = dataset(5).samples().to_vec();
        data.extend_samples(extra);
        assert_eq!(data.len(), 15);
    }
}
