//! Samples, demographic groups and disease classes.

use serde::{Deserialize, Serialize};

/// A demographic group defined by an inherent feature (the paper's example
/// is skin colour dividing the dataset into light and dark skin).
///
/// The paper's formulation supports an arbitrary number of groups; the
/// generator defaults to two but every consumer of `Group` works with any
/// number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Group(pub usize);

impl Group {
    /// The light-skin (majority) group of the dermatology case study.
    pub const LIGHT_SKIN: Group = Group(0);
    /// The dark-skin (minority) group of the dermatology case study.
    pub const DARK_SKIN: Group = Group(1);

    /// Human-readable label used in reports.
    pub fn label(&self) -> String {
        match self.0 {
            0 => "light".to_string(),
            1 => "dark".to_string(),
            other => format!("group-{other}"),
        }
    }
}

impl std::fmt::Display for Group {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The five dermatological disease classes of the paper's case study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiseaseClass {
    /// Melanoma.
    Melanoma,
    /// Melanocytic nevus.
    MelanocyticNevus,
    /// Basal cell carcinoma.
    BasalCellCarcinoma,
    /// Dermatofibroma.
    Dermatofibroma,
    /// Squamous cell carcinoma.
    SquamousCellCarcinoma,
}

impl DiseaseClass {
    /// All classes in label-index order.
    pub const ALL: [DiseaseClass; 5] = [
        DiseaseClass::Melanoma,
        DiseaseClass::MelanocyticNevus,
        DiseaseClass::BasalCellCarcinoma,
        DiseaseClass::Dermatofibroma,
        DiseaseClass::SquamousCellCarcinoma,
    ];

    /// The integer label used for training.
    pub fn index(&self) -> usize {
        match self {
            DiseaseClass::Melanoma => 0,
            DiseaseClass::MelanocyticNevus => 1,
            DiseaseClass::BasalCellCarcinoma => 2,
            DiseaseClass::Dermatofibroma => 3,
            DiseaseClass::SquamousCellCarcinoma => 4,
        }
    }

    /// Recovers a class from an integer label.
    pub fn from_index(index: usize) -> Option<DiseaseClass> {
        DiseaseClass::ALL.get(index).copied()
    }
}

impl std::fmt::Display for DiseaseClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            DiseaseClass::Melanoma => "melanoma",
            DiseaseClass::MelanocyticNevus => "melanocytic nevus",
            DiseaseClass::BasalCellCarcinoma => "basal cell carcinoma",
            DiseaseClass::Dermatofibroma => "dermatofibroma",
            DiseaseClass::SquamousCellCarcinoma => "squamous cell carcinoma",
        };
        write!(f, "{name}")
    }
}

/// One labelled image.
///
/// Pixels are stored channel-major (NCHW with N = 1 elided): the first
/// `size²` values are the red channel, then green, then blue. Values are in
/// `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Flattened CHW pixel data.
    pub pixels: Vec<f32>,
    /// Image side length (images are square).
    pub size: usize,
    /// Class label index (`0..classes`).
    pub label: usize,
    /// Demographic group of the pictured patient.
    pub group: Group,
}

impl Sample {
    /// Number of channels (always RGB).
    pub const CHANNELS: usize = 3;

    /// Number of pixel values (`3 × size²`).
    pub fn feature_len(&self) -> usize {
        self.pixels.len()
    }

    /// The disease class, if the label maps onto the five-class case study.
    pub fn disease(&self) -> Option<DiseaseClass> {
        DiseaseClass::from_index(self.label)
    }

    /// Returns the pixel at `(channel, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn pixel(&self, channel: usize, y: usize, x: usize) -> f32 {
        assert!(channel < Self::CHANNELS && y < self.size && x < self.size);
        self.pixels[(channel * self.size + y) * self.size + x]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_labels_match_case_study() {
        assert_eq!(Group::LIGHT_SKIN.label(), "light");
        assert_eq!(Group::DARK_SKIN.label(), "dark");
        assert_eq!(Group(3).label(), "group-3");
        assert_eq!(Group::DARK_SKIN.to_string(), "dark");
    }

    #[test]
    fn disease_class_round_trips_through_index() {
        for class in DiseaseClass::ALL {
            assert_eq!(DiseaseClass::from_index(class.index()), Some(class));
        }
        assert_eq!(DiseaseClass::from_index(9), None);
    }

    #[test]
    fn there_are_five_disease_classes() {
        assert_eq!(DiseaseClass::ALL.len(), 5);
        let display = DiseaseClass::Melanoma.to_string();
        assert!(display.contains("melanoma"));
    }

    #[test]
    fn sample_pixel_indexing_is_channel_major() {
        let size = 2;
        let mut pixels = vec![0.0; 3 * size * size];
        pixels[(size + 1) * size] = 0.7; // channel 1, y=1, x=0
        let sample = Sample {
            pixels,
            size,
            label: 0,
            group: Group::LIGHT_SKIN,
        };
        assert_eq!(sample.pixel(1, 1, 0), 0.7);
        assert_eq!(sample.pixel(0, 0, 0), 0.0);
        assert_eq!(sample.feature_len(), 12);
        assert_eq!(sample.disease(), Some(DiseaseClass::Melanoma));
    }

    #[test]
    #[should_panic]
    fn pixel_out_of_bounds_panics() {
        let sample = Sample {
            pixels: vec![0.0; 12],
            size: 2,
            label: 0,
            group: Group::LIGHT_SKIN,
        };
        sample.pixel(0, 2, 0);
    }
}
