//! `dermsim` — a synthetic, group-structured dermatology dataset.
//!
//! The FaHaNa paper evaluates on a dermatology dataset assembled from ISIC
//! 2019 (light-skin majority), Dermnet and Atlas Dermatology (dark-skin
//! minority), labelled with five disease classes. Those images cannot be
//! redistributed, so this crate generates a synthetic stand-in that preserves
//! the property the paper studies: *group-dependent feature shifts combined
//! with group imbalance make the minority group harder to classify, and the
//! gap shrinks as model capacity grows*.
//!
//! Every sample is a small RGB image (NCHW, `3 × size × size`):
//!
//! * the **background tone** encodes the demographic group (light skin =
//!   bright background, dark skin = dark background);
//! * the **lesion pattern** encodes the disease class (five distinct spatial
//!   patterns);
//! * the lesion **contrast is lower for the dark-skin group**, so the same
//!   class is intrinsically harder to recognise for the minority — the same
//!   mechanism the paper's Figure 2 documents for real dermatology images;
//! * label noise and per-sample jitter keep the task non-trivial.
//!
//! The crate also implements the **data balancing** technique of Table 4
//! (generating extra minority data, following the fair-generative-model idea
//! of the paper's reference [18]) as [`balance_dataset`].
//!
//! # Example
//!
//! ```
//! use dermsim::{DermatologyConfig, DermatologyGenerator};
//!
//! let config = DermatologyConfig { samples: 200, ..DermatologyConfig::default() };
//! let dataset = DermatologyGenerator::new(config).generate();
//! assert_eq!(dataset.len(), 200);
//! let split = dataset.split_default();
//! assert!(split.train.len() > split.test.len());
//! ```

pub mod balancing;
pub mod dataset;
pub mod generator;
pub mod sample;
pub mod stats;

pub use balancing::{balance_dataset, BalancingConfig};
pub use dataset::{Dataset, DatasetSplit};
pub use generator::{DermatologyConfig, DermatologyGenerator};
pub use sample::{DiseaseClass, Group, Sample};
pub use stats::DatasetStats;
