//! Dataset composition statistics.

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::sample::Group;

/// Composition statistics of a dataset: how many samples each class and each
/// demographic group contributes, and how imbalanced the groups are.
///
/// The imbalance ratio (`majority / minority`) is the quantity the paper's
/// Figure 1(b) sweeps by adding 1×–5× minority data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Sample count per class index.
    pub per_class: Vec<usize>,
    /// Sample count per group index.
    pub per_group: Vec<usize>,
    /// Total number of samples.
    pub total: usize,
    /// Largest group count divided by smallest non-zero group count.
    pub imbalance_ratio: f32,
    /// Index of the majority group.
    pub majority_group: Group,
    /// Index of the smallest non-empty group.
    pub minority_group: Group,
}

impl DatasetStats {
    /// Computes statistics for a dataset.
    pub fn from_dataset(dataset: &Dataset) -> Self {
        let mut per_class = vec![0usize; dataset.classes().max(1)];
        let mut per_group = vec![0usize; dataset.groups().max(1)];
        for sample in dataset.samples() {
            if sample.label < per_class.len() {
                per_class[sample.label] += 1;
            }
            if sample.group.0 < per_group.len() {
                per_group[sample.group.0] += 1;
            }
        }
        let total = dataset.len();
        let (majority_idx, &majority_count) = per_group
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .unwrap_or((0, &0));
        let (minority_idx, &minority_count) = per_group
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .min_by_key(|(_, &c)| c)
            .unwrap_or((0, &0));
        let imbalance_ratio = if minority_count == 0 {
            f32::INFINITY
        } else {
            majority_count as f32 / minority_count as f32
        };
        DatasetStats {
            per_class,
            per_group,
            total,
            imbalance_ratio,
            majority_group: Group(majority_idx),
            minority_group: Group(minority_idx),
        }
    }

    /// The fraction of samples belonging to the minority group.
    pub fn minority_fraction(&self) -> f32 {
        if self.total == 0 {
            return 0.0;
        }
        self.per_group
            .get(self.minority_group.0)
            .copied()
            .unwrap_or(0) as f32
            / self.total as f32
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} samples, groups {:?} (imbalance {:.2}), classes {:?}",
            self.total, self.per_group, self.imbalance_ratio, self.per_class
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{DermatologyConfig, DermatologyGenerator};
    use crate::sample::Sample;

    #[test]
    fn counts_match_dataset_composition() {
        let dataset = DermatologyGenerator::new(DermatologyConfig {
            samples: 400,
            image_size: 6,
            minority_fraction: 0.25,
            ..DermatologyConfig::default()
        })
        .generate();
        let stats = dataset.stats();
        assert_eq!(stats.total, 400);
        assert_eq!(stats.per_group.iter().sum::<usize>(), 400);
        assert_eq!(stats.per_class.iter().sum::<usize>(), 400);
        assert_eq!(stats.majority_group, Group::LIGHT_SKIN);
        assert_eq!(stats.minority_group, Group::DARK_SKIN);
        assert!(stats.imbalance_ratio > 1.0);
        assert!((stats.minority_fraction() - 0.25).abs() < 0.05);
        assert!(!stats.to_string().is_empty());
    }

    #[test]
    fn empty_dataset_has_zero_stats() {
        let dataset = Dataset::new(Vec::new(), 5, 2);
        let stats = dataset.stats();
        assert_eq!(stats.total, 0);
        assert_eq!(stats.minority_fraction(), 0.0);
    }

    #[test]
    fn single_group_dataset_has_unit_imbalance() {
        let samples: Vec<Sample> = (0..10)
            .map(|i| Sample {
                pixels: vec![0.0; 12],
                size: 2,
                label: i % 5,
                group: Group(0),
            })
            .collect();
        let dataset = Dataset::new(samples, 5, 1);
        let stats = dataset.stats();
        assert_eq!(stats.imbalance_ratio, 1.0);
        assert_eq!(stats.majority_group, stats.minority_group);
    }
}
