//! The synthetic dermatology image generator.

use ftensor::SeededRng;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::sample::{Group, Sample};

/// Configuration of the synthetic dermatology dataset.
///
/// The defaults correspond to the case-study dataset of the paper: five
/// disease classes, two demographic groups with a light-skin majority, and a
/// minority fraction low enough that an undersized model visibly sacrifices
/// minority accuracy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DermatologyConfig {
    /// Total number of samples to generate.
    pub samples: usize,
    /// Number of disease classes.
    pub classes: usize,
    /// Number of demographic groups (group 0 is the majority).
    pub groups: usize,
    /// Fraction of samples belonging to the minority group(s) combined.
    pub minority_fraction: f32,
    /// Side length of the square RGB images.
    pub image_size: usize,
    /// Standard deviation of additive pixel noise.
    pub noise: f32,
    /// Lesion contrast for the majority group (minority contrast is scaled
    /// down by `minority_contrast_factor`).
    pub lesion_contrast: f32,
    /// Multiplier (< 1) applied to lesion contrast for minority groups.
    pub minority_contrast_factor: f32,
    /// Probability that a sample's label is replaced with a random class.
    pub label_noise: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DermatologyConfig {
    fn default() -> Self {
        DermatologyConfig {
            samples: 2000,
            classes: 5,
            groups: 2,
            minority_fraction: 0.15,
            image_size: 12,
            noise: 0.08,
            lesion_contrast: 0.55,
            minority_contrast_factor: 0.45,
            label_noise: 0.02,
            seed: 2022,
        }
    }
}

/// Generates [`Dataset`]s according to a [`DermatologyConfig`].
///
/// # Example
///
/// ```
/// use dermsim::{DermatologyConfig, DermatologyGenerator};
///
/// let dataset = DermatologyGenerator::new(DermatologyConfig {
///     samples: 100,
///     ..DermatologyConfig::default()
/// })
/// .generate();
/// assert_eq!(dataset.len(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct DermatologyGenerator {
    config: DermatologyConfig,
}

impl DermatologyGenerator {
    /// Creates a generator for the given configuration.
    pub fn new(config: DermatologyConfig) -> Self {
        DermatologyGenerator { config }
    }

    /// The configuration used by this generator.
    pub fn config(&self) -> &DermatologyConfig {
        &self.config
    }

    /// Generates the full dataset deterministically from the config seed.
    pub fn generate(&self) -> Dataset {
        let cfg = &self.config;
        let mut rng = SeededRng::new(cfg.seed);
        let mut samples = Vec::with_capacity(cfg.samples);
        for idx in 0..cfg.samples {
            let group = self.assign_group(idx);
            let true_label = rng.below(cfg.classes.max(1));
            let label = if rng.chance(cfg.label_noise as f64) {
                rng.below(cfg.classes.max(1))
            } else {
                true_label
            };
            let sample = self.render_sample(true_label, label, group, &mut rng);
            samples.push(sample);
        }
        Dataset::new(samples, cfg.classes, cfg.groups)
    }

    /// Generates a single extra sample for a given class and group — used by
    /// the data-balancing augmentation of Table 4.
    pub fn generate_sample(&self, label: usize, group: Group, rng: &mut SeededRng) -> Sample {
        self.render_sample(label, label, group, rng)
    }

    fn assign_group(&self, idx: usize) -> Group {
        // Deterministic interleaving so every prefix of the dataset has the
        // configured imbalance. Minority samples are spread uniformly.
        let cfg = &self.config;
        if cfg.groups <= 1 {
            return Group(0);
        }
        let minority_every = if cfg.minority_fraction <= 0.0 {
            usize::MAX
        } else {
            (1.0 / cfg.minority_fraction).round().max(1.0) as usize
        };
        if minority_every != usize::MAX && idx % minority_every == minority_every - 1 {
            // round-robin across the minority groups
            Group(1 + (idx / minority_every) % (cfg.groups - 1))
        } else {
            Group(0)
        }
    }

    fn render_sample(
        &self,
        pattern_label: usize,
        label: usize,
        group: Group,
        rng: &mut SeededRng,
    ) -> Sample {
        let cfg = &self.config;
        let size = cfg.image_size;
        let mut pixels = vec![0.0f32; 3 * size * size];
        // CHW offset of pixel (x, y) in channel c
        let at = |c: usize, y: usize, x: usize| (c * size + y) * size + x;

        // Background tone: the demographic feature. Light skin is bright
        // with a warm tint; dark skin is darker.
        let (base_r, base_g, base_b) = if group == Group(0) {
            (0.85, 0.72, 0.62)
        } else {
            (0.38, 0.26, 0.20)
        };
        let tone_jitter = rng.normal(0.0, 0.03);
        for y in 0..size {
            for x in 0..size {
                pixels[at(0, y, x)] = base_r + tone_jitter;
                pixels[at(1, y, x)] = base_g + tone_jitter;
                pixels[at(2, y, x)] = base_b + tone_jitter;
            }
        }

        // Lesion pattern: the class feature. Lower contrast for minority
        // groups reproduces the "harder to diagnose on dark skin" effect.
        let contrast = if group == Group(0) {
            cfg.lesion_contrast
        } else {
            cfg.lesion_contrast * cfg.minority_contrast_factor
        };
        let cx = size as f32 / 2.0 + rng.normal(0.0, 0.6);
        let cy = size as f32 / 2.0 + rng.normal(0.0, 0.6);
        let radius = size as f32 * (0.22 + 0.04 * rng.uniform(-1.0, 1.0));
        for y in 0..size {
            for x in 0..size {
                let dx = x as f32 - cx;
                let dy = y as f32 - cy;
                let dist = (dx * dx + dy * dy).sqrt();
                let intensity = lesion_intensity(pattern_label, dx, dy, dist, radius);
                if intensity == 0.0 {
                    continue;
                }
                let delta = contrast * intensity;
                // lesions darken the red channel and shift blue/green in a
                // class-specific way so classes stay separable
                pixels[at(0, y, x)] -= delta;
                pixels[at(1, y, x)] -= delta * (0.4 + 0.1 * pattern_label as f32);
                pixels[at(2, y, x)] += delta * (0.15 * pattern_label as f32 - 0.2);
            }
        }

        // Additive pixel noise and clamping to [0, 1].
        for v in &mut pixels {
            *v += rng.normal(0.0, cfg.noise);
            *v = v.clamp(0.0, 1.0);
        }

        Sample {
            pixels,
            size,
            label,
            group,
        }
    }
}

/// Spatial lesion profile per class: five visually distinct shapes.
fn lesion_intensity(label: usize, dx: f32, dy: f32, dist: f32, radius: f32) -> f32 {
    match label % 5 {
        // Melanoma: irregular filled blob
        0 => {
            if dist < radius * (1.0 + 0.3 * (dx * 1.7).sin()) {
                1.0
            } else {
                0.0
            }
        }
        // Melanocytic nevus: smooth round blob with soft edge
        1 => (1.0 - dist / radius).max(0.0),
        // Basal cell carcinoma: ring
        2 => {
            if (dist - radius).abs() < radius * 0.3 {
                1.0
            } else {
                0.0
            }
        }
        // Dermatofibroma: small dense core
        3 => {
            if dist < radius * 0.5 {
                1.2
            } else {
                0.0
            }
        }
        // Squamous cell carcinoma: cross/streak pattern
        _ => {
            if dx.abs() < radius * 0.3 || dy.abs() < radius * 0.3 {
                if dist < radius * 1.2 {
                    0.9
                } else {
                    0.0
                }
            } else {
                0.0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small_config(samples: usize) -> DermatologyConfig {
        DermatologyConfig {
            samples,
            image_size: 8,
            ..DermatologyConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = DermatologyGenerator::new(small_config(50)).generate();
        let b = DermatologyGenerator::new(small_config(50)).generate();
        assert_eq!(a.samples()[..5], b.samples()[..5]);
    }

    #[test]
    fn different_seeds_give_different_data() {
        let mut cfg = small_config(50);
        cfg.seed = 1;
        let a = DermatologyGenerator::new(cfg.clone()).generate();
        cfg.seed = 2;
        let b = DermatologyGenerator::new(cfg).generate();
        assert_ne!(a.samples()[0].pixels, b.samples()[0].pixels);
    }

    #[test]
    fn minority_fraction_is_respected() {
        let cfg = DermatologyConfig {
            samples: 1000,
            minority_fraction: 0.2,
            image_size: 6,
            ..DermatologyConfig::default()
        };
        let dataset = DermatologyGenerator::new(cfg).generate();
        let minority = dataset
            .samples()
            .iter()
            .filter(|s| s.group != Group(0))
            .count();
        let fraction = minority as f32 / 1000.0;
        assert!(
            (fraction - 0.2).abs() < 0.05,
            "minority fraction was {fraction}"
        );
    }

    #[test]
    fn groups_have_distinct_background_tone() {
        let dataset = DermatologyGenerator::new(small_config(400)).generate();
        let mean_brightness = |group: Group| -> f32 {
            let samples: Vec<&Sample> = dataset
                .samples()
                .iter()
                .filter(|s| s.group == group)
                .collect();
            let total: f32 = samples
                .iter()
                .map(|s| s.pixels.iter().sum::<f32>() / s.pixels.len() as f32)
                .sum();
            total / samples.len().max(1) as f32
        };
        let light = mean_brightness(Group::LIGHT_SKIN);
        let dark = mean_brightness(Group::DARK_SKIN);
        assert!(
            light > dark + 0.2,
            "light background ({light}) should be brighter than dark ({dark})"
        );
    }

    #[test]
    fn pixels_are_clamped_to_unit_interval() {
        let dataset = DermatologyGenerator::new(small_config(100)).generate();
        for sample in dataset.samples() {
            assert!(sample.pixels.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn labels_are_within_class_range() {
        let dataset = DermatologyGenerator::new(small_config(200)).generate();
        assert!(dataset.samples().iter().all(|s| s.label < 5));
    }

    #[test]
    fn lesion_patterns_differ_between_classes() {
        // Render one noiseless sample per class and check pairwise distance.
        let cfg = DermatologyConfig {
            noise: 0.0,
            label_noise: 0.0,
            image_size: 10,
            ..DermatologyConfig::default()
        };
        let gen = DermatologyGenerator::new(cfg);
        let mut rng = SeededRng::new(7);
        let images: Vec<Sample> = (0..5)
            .map(|c| gen.generate_sample(c, Group::LIGHT_SKIN, &mut rng))
            .collect();
        for i in 0..5 {
            for j in (i + 1)..5 {
                let dist: f32 = images[i]
                    .pixels
                    .iter()
                    .zip(images[j].pixels.iter())
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                assert!(
                    dist > 0.5,
                    "classes {i} and {j} produce nearly identical images"
                );
            }
        }
    }

    #[test]
    fn minority_lesions_have_lower_contrast() {
        let cfg = DermatologyConfig {
            noise: 0.0,
            label_noise: 0.0,
            image_size: 10,
            ..DermatologyConfig::default()
        };
        let gen = DermatologyGenerator::new(cfg);
        let mut rng = SeededRng::new(3);
        // contrast proxy: range of the red channel (background minus lesion)
        let contrast = |group: Group, rng: &mut SeededRng| -> f32 {
            let s = gen.generate_sample(0, group, rng);
            let red = &s.pixels[0..s.size * s.size];
            red.iter().copied().fold(f32::NEG_INFINITY, f32::max)
                - red.iter().copied().fold(f32::INFINITY, f32::min)
        };
        let light = contrast(Group::LIGHT_SKIN, &mut rng);
        let dark = contrast(Group::DARK_SKIN, &mut rng);
        assert!(
            light > dark,
            "light-skin contrast ({light}) should exceed dark-skin contrast ({dark})"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn prop_sample_count_and_size_match_config(samples in 1usize..120, size in 4usize..10) {
            let cfg = DermatologyConfig {
                samples,
                image_size: size,
                ..DermatologyConfig::default()
            };
            let dataset = DermatologyGenerator::new(cfg).generate();
            prop_assert_eq!(dataset.len(), samples);
            prop_assert!(dataset.samples().iter().all(|s| s.pixels.len() == 3 * size * size));
        }
    }
}
