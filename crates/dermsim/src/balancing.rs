//! Data balancing: generating extra minority samples (paper Table 4).
//!
//! The paper's compatibility experiment applies the fair-generative-model
//! technique of its reference [18] to synthesise 5× more minority data. We
//! reproduce the effect with a generative-style augmentation: new minority
//! samples are rendered from the same generative process with fresh noise
//! and geometric jitter, so the augmented set is "new data from the minority
//! distribution" rather than exact copies.

use ftensor::SeededRng;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::generator::DermatologyGenerator;
use crate::sample::Group;

/// Configuration of the minority-data balancing step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BalancingConfig {
    /// How many times more minority data to end up with (the paper uses 5×).
    pub minority_multiplier: usize,
    /// RNG seed for the generated samples.
    pub seed: u64,
}

impl Default for BalancingConfig {
    fn default() -> Self {
        BalancingConfig {
            minority_multiplier: 5,
            seed: 77,
        }
    }
}

/// Produces a new dataset whose minority groups have `minority_multiplier`
/// times as many samples, generated from the same synthetic distribution.
///
/// The majority group is left untouched. The class distribution of the new
/// minority samples follows the class distribution already present in that
/// group, so balancing changes *group* balance without distorting *class*
/// balance.
///
/// # Example
///
/// ```
/// use dermsim::{balance_dataset, BalancingConfig, DermatologyConfig, DermatologyGenerator};
///
/// let generator = DermatologyGenerator::new(DermatologyConfig {
///     samples: 200,
///     ..DermatologyConfig::default()
/// });
/// let dataset = generator.generate();
/// let before = dataset.stats().imbalance_ratio;
/// let balanced = balance_dataset(&dataset, &generator, BalancingConfig::default());
/// assert!(balanced.stats().imbalance_ratio < before);
/// ```
pub fn balance_dataset(
    dataset: &Dataset,
    generator: &DermatologyGenerator,
    config: BalancingConfig,
) -> Dataset {
    let mut result = dataset.clone();
    if config.minority_multiplier <= 1 {
        return result;
    }
    let stats = dataset.stats();
    let mut rng = SeededRng::new(config.seed);
    for group_id in 0..dataset.groups() {
        let group = Group(group_id);
        if group == stats.majority_group {
            continue;
        }
        let existing: Vec<usize> = dataset
            .samples()
            .iter()
            .filter(|s| s.group == group)
            .map(|s| s.label)
            .collect();
        if existing.is_empty() {
            continue;
        }
        let extra_needed = existing.len() * (config.minority_multiplier - 1);
        let mut extra = Vec::with_capacity(extra_needed);
        for i in 0..extra_needed {
            // follow the group's existing class distribution
            let label = existing[i % existing.len()];
            extra.push(generator.generate_sample(label, group, &mut rng));
        }
        result.extend_samples(extra);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::DermatologyConfig;

    fn setup(samples: usize) -> (Dataset, DermatologyGenerator) {
        let generator = DermatologyGenerator::new(DermatologyConfig {
            samples,
            image_size: 6,
            minority_fraction: 0.2,
            ..DermatologyConfig::default()
        });
        (generator.generate(), generator)
    }

    #[test]
    fn balancing_multiplies_minority_count() {
        let (dataset, generator) = setup(500);
        let before = dataset.subset_by_group(Group::DARK_SKIN).len();
        let balanced = balance_dataset(
            &dataset,
            &generator,
            BalancingConfig {
                minority_multiplier: 5,
                seed: 1,
            },
        );
        let after = balanced.subset_by_group(Group::DARK_SKIN).len();
        assert_eq!(after, before * 5);
        // majority untouched
        assert_eq!(
            balanced.subset_by_group(Group::LIGHT_SKIN).len(),
            dataset.subset_by_group(Group::LIGHT_SKIN).len()
        );
    }

    #[test]
    fn balancing_reduces_imbalance_ratio() {
        let (dataset, generator) = setup(400);
        let balanced = balance_dataset(&dataset, &generator, BalancingConfig::default());
        assert!(balanced.stats().imbalance_ratio < dataset.stats().imbalance_ratio);
    }

    #[test]
    fn multiplier_of_one_is_identity() {
        let (dataset, generator) = setup(100);
        let balanced = balance_dataset(
            &dataset,
            &generator,
            BalancingConfig {
                minority_multiplier: 1,
                seed: 0,
            },
        );
        assert_eq!(balanced.len(), dataset.len());
    }

    #[test]
    fn generated_samples_are_new_not_copies() {
        let (dataset, generator) = setup(200);
        let balanced = balance_dataset(&dataset, &generator, BalancingConfig::default());
        let originals: Vec<&Vec<f32>> = dataset
            .samples()
            .iter()
            .filter(|s| s.group == Group::DARK_SKIN)
            .map(|s| &s.pixels)
            .collect();
        // every appended sample differs from every original minority sample
        let appended = &balanced.samples()[dataset.len()..];
        assert!(!appended.is_empty());
        for new_sample in appended.iter().take(10) {
            assert!(originals.iter().all(|orig| *orig != &new_sample.pixels));
        }
    }

    #[test]
    fn class_distribution_is_preserved_in_augmentation() {
        let (dataset, generator) = setup(600);
        let balanced = balance_dataset(&dataset, &generator, BalancingConfig::default());
        let class_counts = |d: &Dataset| -> Vec<usize> {
            let minority = d.subset_by_group(Group::DARK_SKIN);
            let mut counts = vec![0usize; d.classes()];
            for s in minority.samples() {
                counts[s.label] += 1;
            }
            counts
        };
        let before = class_counts(&dataset);
        let after = class_counts(&balanced);
        for (b, a) in before.iter().zip(after.iter()) {
            // each class count is multiplied by ~5 (exact up to rounding of the round-robin)
            assert!(*a >= *b * 4, "class count {b} grew only to {a}");
        }
    }
}
