//! Hardware specifications (timing and storage constraints).

use serde::{Deserialize, Serialize};

use archspace::Architecture;

use crate::device::DeviceProfile;
use crate::latency::LatencyEstimator;

/// A deployment specification: a target device, a timing constraint `TC`,
/// and an optional storage limit (the paper's Table 1 filters to models
/// under 30 MB on a Pi with `TC = 1500 ms`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareSpec {
    /// The target device.
    pub device: DeviceProfile,
    /// Timing constraint `TC` in milliseconds.
    pub timing_constraint_ms: f64,
    /// Optional storage limit in MB.
    pub storage_limit_mb: Option<f64>,
}

impl HardwareSpec {
    /// Creates a specification with a timing constraint only.
    pub fn new(device: DeviceProfile, timing_constraint_ms: f64) -> Self {
        HardwareSpec {
            device,
            timing_constraint_ms,
            storage_limit_mb: None,
        }
    }

    /// Adds a storage limit (MB).
    pub fn with_storage_limit(mut self, limit_mb: f64) -> Self {
        self.storage_limit_mb = Some(limit_mb);
        self
    }

    /// The paper's Table 1 scenario: Raspberry Pi, `TC = 1500 ms`, < 30 MB.
    pub fn table1_raspberry_pi() -> Self {
        HardwareSpec::new(DeviceProfile::raspberry_pi_4(), 1500.0).with_storage_limit(30.0)
    }

    /// Whether a measured/estimated latency satisfies the timing constraint.
    pub fn meets_latency(&self, latency_ms: f64) -> bool {
        latency_ms <= self.timing_constraint_ms
    }

    /// Whether a storage footprint satisfies the storage limit (if any).
    pub fn meets_storage(&self, storage_mb: f64) -> bool {
        self.storage_limit_mb
            .map(|limit| storage_mb <= limit)
            .unwrap_or(true)
    }

    /// Estimates an architecture on this spec's device and checks both
    /// constraints, returning `(latency_ms, meets_spec)`.
    pub fn check(&self, arch: &Architecture) -> (f64, bool) {
        let latency = LatencyEstimator::new(self.device.clone()).estimate_ms(arch);
        let meets = self.meets_latency(latency) && self.meets_storage(arch.storage_mb());
        (latency, meets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archspace::zoo;

    #[test]
    fn latency_constraint_is_inclusive() {
        let spec = HardwareSpec::new(DeviceProfile::raspberry_pi_4(), 100.0);
        assert!(spec.meets_latency(100.0));
        assert!(spec.meets_latency(99.9));
        assert!(!spec.meets_latency(100.1));
    }

    #[test]
    fn storage_limit_is_optional() {
        let spec = HardwareSpec::new(DeviceProfile::raspberry_pi_4(), 100.0);
        assert!(spec.meets_storage(1e9));
        let limited = spec.with_storage_limit(30.0);
        assert!(limited.meets_storage(29.9));
        assert!(!limited.meets_storage(30.1));
    }

    #[test]
    fn table1_scenario_accepts_small_models_and_rejects_large_ones() {
        let spec = HardwareSpec::table1_raspberry_pi();
        let (lat_small, ok_small) = spec.check(&zoo::paper_fahana_small(5, 224));
        let (lat_mbv2, ok_mbv2) = spec.check(&zoo::mobilenet_v2(5, 224));
        assert!(
            ok_small,
            "FaHaNa-Small ({lat_small:.0}ms) should meet the spec"
        );
        assert!(
            !ok_mbv2,
            "MobileNetV2 ({lat_mbv2:.0}ms) should violate TC=1500ms"
        );
    }

    #[test]
    fn storage_violation_fails_even_when_fast() {
        // ResNet-50 is fast on the Pi but far exceeds the 30 MB storage limit.
        let spec = HardwareSpec::table1_raspberry_pi();
        let resnet50 = zoo::reference_architecture(zoo::ReferenceModel::ResNet50, 5, 224);
        let (_, ok) = spec.check(&resnet50);
        assert!(!ok);
    }
}
