//! Analytic per-operation latency estimation.

use serde::{Deserialize, Serialize};

use archspace::block::ConvOp;
use archspace::Architecture;

use crate::device::DeviceProfile;

/// A latency estimate with its per-category decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// End-to-end latency (ms).
    pub total_ms: f64,
    /// Time spent in compute-bound phases (ms).
    pub compute_ms: f64,
    /// Time spent in memory-bound phases (ms).
    pub memory_ms: f64,
    /// Fixed dispatch overhead (ms).
    pub overhead_ms: f64,
    /// Number of primitive operations.
    pub op_count: usize,
}

impl LatencyBreakdown {
    /// A zero estimate (empty network).
    pub fn zero() -> Self {
        LatencyBreakdown {
            total_ms: 0.0,
            compute_ms: 0.0,
            memory_ms: 0.0,
            overhead_ms: 0.0,
            op_count: 0,
        }
    }

    /// Accumulates another breakdown into this one.
    pub fn accumulate(&mut self, other: &LatencyBreakdown) {
        self.total_ms += other.total_ms;
        self.compute_ms += other.compute_ms;
        self.memory_ms += other.memory_ms;
        self.overhead_ms += other.overhead_ms;
        self.op_count += other.op_count;
    }
}

/// Estimates inference latency of architectures on a device.
///
/// The model is a roofline-style estimate per primitive operation:
/// `latency = max(flops / throughput(kind), bytes / bandwidth) + overhead`.
///
/// # Example
///
/// ```
/// use archspace::zoo;
/// use edgehw::{DeviceProfile, LatencyEstimator};
///
/// let estimator = LatencyEstimator::new(DeviceProfile::raspberry_pi_4());
/// let small = estimator.estimate(&zoo::paper_fahana_small(5, 224));
/// let big = estimator.estimate(&zoo::mobilenet_v2(5, 224));
/// assert!(small.total_ms < big.total_ms);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyEstimator {
    device: DeviceProfile,
}

impl LatencyEstimator {
    /// Creates an estimator for a device.
    pub fn new(device: DeviceProfile) -> Self {
        LatencyEstimator { device }
    }

    /// The device profile in use.
    pub fn device(&self) -> &DeviceProfile {
        &self.device
    }

    /// Latency of a single primitive operation (ms).
    pub fn op_latency_ms(&self, op: &ConvOp) -> f64 {
        let flops = op.flops() as f64;
        let throughput = self.device.throughput(op.kind).max(1e-9) * 1.0e9;
        let compute_s = flops / throughput;
        let bytes = op.memory_traffic() as f64 * 4.0;
        let memory_s = bytes / (self.device.memory_bandwidth_gbps.max(1e-9) * 1.0e9);
        compute_s.max(memory_s) * 1.0e3 + self.device.per_op_overhead_ms
    }

    /// Estimates the latency of a list of operations.
    pub fn estimate_ops(&self, ops: &[ConvOp]) -> LatencyBreakdown {
        let mut breakdown = LatencyBreakdown::zero();
        for op in ops {
            let flops = op.flops() as f64;
            let throughput = self.device.throughput(op.kind).max(1e-9) * 1.0e9;
            let compute_ms = flops / throughput * 1.0e3;
            let bytes = op.memory_traffic() as f64 * 4.0;
            let memory_ms = bytes / (self.device.memory_bandwidth_gbps.max(1e-9) * 1.0e9) * 1.0e3;
            breakdown.compute_ms += compute_ms;
            breakdown.memory_ms += memory_ms;
            breakdown.overhead_ms += self.device.per_op_overhead_ms;
            breakdown.total_ms += compute_ms.max(memory_ms) + self.device.per_op_overhead_ms;
            breakdown.op_count += 1;
        }
        breakdown
    }

    /// Estimates the end-to-end latency of an architecture (ms).
    pub fn estimate(&self, arch: &Architecture) -> LatencyBreakdown {
        self.estimate_ops(&arch.ops())
    }

    /// Convenience accessor returning only the total (ms).
    pub fn estimate_ms(&self, arch: &Architecture) -> f64 {
        self.estimate(arch).total_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archspace::zoo::{self, ReferenceModel};
    use archspace::{Architecture, BlockConfig, BlockKind};
    use proptest::prelude::*;

    fn pi() -> LatencyEstimator {
        LatencyEstimator::new(DeviceProfile::raspberry_pi_4())
    }

    fn odroid() -> LatencyEstimator {
        LatencyEstimator::new(DeviceProfile::odroid_xu4())
    }

    #[test]
    fn empty_op_list_is_free() {
        let b = pi().estimate_ops(&[]);
        assert_eq!(b.total_ms, 0.0);
        assert_eq!(b.op_count, 0);
    }

    #[test]
    fn more_blocks_cost_more() {
        let small = Architecture::builder(5)
            .stem(16, 3)
            .input_size(64)
            .block(BlockConfig::new(BlockKind::Mb, 16, 64, 24, 3))
            .build()
            .unwrap();
        let large = Architecture::builder(5)
            .stem(16, 3)
            .input_size(64)
            .block(BlockConfig::new(BlockKind::Mb, 16, 64, 24, 3))
            .block(BlockConfig::new(BlockKind::Rb, 24, 48, 48, 3))
            .build()
            .unwrap();
        assert!(pi().estimate_ms(&large) > pi().estimate_ms(&small));
    }

    #[test]
    fn odroid_is_slower_than_pi_for_every_zoo_model() {
        for entry in zoo::reference_models(5, 224) {
            let on_pi = pi().estimate_ms(&entry.architecture);
            let on_odroid = odroid().estimate_ms(&entry.architecture);
            assert!(
                on_odroid > on_pi,
                "{} should be slower on Odroid ({on_odroid:.0}ms) than on the Pi ({on_pi:.0}ms)",
                entry.model
            );
        }
    }

    #[test]
    fn mobilenet_v2_is_slower_than_resnet50_on_the_pi() {
        // the paper's counter-intuitive Table 3 observation: depthwise-heavy
        // networks are slow per FLOP under PyTorch on ARM
        let mbv2 = zoo::reference_architecture(ReferenceModel::MobileNetV2, 5, 224);
        let r50 = zoo::reference_architecture(ReferenceModel::ResNet50, 5, 224);
        assert!(mbv2.flops() < r50.flops(), "MobileNetV2 has fewer FLOPs");
        assert!(
            pi().estimate_ms(&mbv2) > pi().estimate_ms(&r50),
            "but should still be slower on the Pi"
        );
    }

    #[test]
    fn fahana_small_meets_the_1500ms_constraint_and_mbv2_does_not() {
        let small = zoo::paper_fahana_small(5, 224);
        let mbv2 = zoo::mobilenet_v2(5, 224);
        let est = pi();
        assert!(est.estimate_ms(&small) < 1500.0);
        assert!(est.estimate_ms(&mbv2) > 1500.0);
    }

    #[test]
    fn calibration_is_within_2x_of_paper_latencies() {
        // We only claim shape fidelity: each zoo model's estimated Pi latency
        // must be within a factor of ~2.5 of the paper's measurement.
        let est = pi();
        for entry in zoo::reference_models(5, 224) {
            let paper = entry.paper.unwrap().latency_raspberry_ms;
            if !paper.is_finite() {
                continue;
            }
            let ours = est.estimate_ms(&entry.architecture);
            let ratio = ours / paper;
            assert!(
                (0.3..=3.0).contains(&ratio),
                "{}: estimated {ours:.0}ms vs paper {paper:.0}ms (ratio {ratio:.2})",
                entry.model
            );
        }
    }

    #[test]
    fn breakdown_components_sum_consistently() {
        let arch = zoo::paper_fahana_small(5, 64);
        let b = pi().estimate(&arch);
        assert!(b.total_ms >= b.overhead_ms);
        assert!(b.total_ms <= b.compute_ms + b.memory_ms + b.overhead_ms + 1e-9);
        assert_eq!(b.op_count, arch.ops().len());
    }

    #[test]
    fn accumulate_adds_fields() {
        let arch = zoo::paper_fahana_small(5, 64);
        let single = pi().estimate(&arch);
        let mut doubled = LatencyBreakdown::zero();
        doubled.accumulate(&single);
        doubled.accumulate(&single);
        assert!((doubled.total_ms - 2.0 * single.total_ms).abs() < 1e-9);
        assert_eq!(doubled.op_count, 2 * single.op_count);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_latency_monotone_in_input_size(size in prop::sample::select(vec![32usize, 64, 96])) {
            let smaller = Architecture::builder(5)
                .stem(16, 3)
                .input_size(size)
                .block(BlockConfig::new(BlockKind::Rb, 16, 32, 32, 3))
                .build()
                .unwrap();
            let larger = Architecture::builder(5)
                .stem(16, 3)
                .input_size(size * 2)
                .block(BlockConfig::new(BlockKind::Rb, 16, 32, 32, 3))
                .build()
                .unwrap();
            prop_assert!(pi().estimate_ms(&larger) >= pi().estimate_ms(&smaller));
        }
    }
}
