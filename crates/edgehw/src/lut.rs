//! The offline per-block latency table used during the search.
//!
//! Paper Section 3.2 ➃: "we will test the performance of each block offline
//! on the given hardware device H, based on which we can efficiently
//! estimate the latency during the search process." This module reproduces
//! that methodology: block latencies are profiled once (here: computed with
//! the analytic model, standing in for on-device measurement), memoised, and
//! summed to estimate a whole child network during the search. The final
//! architectures still get an "end-to-end" estimate via
//! [`LatencyEstimator::estimate`](crate::LatencyEstimator::estimate).

use std::collections::HashMap;

use archspace::block::BlockConfig;
use archspace::Architecture;

use crate::device::DeviceProfile;
use crate::latency::LatencyEstimator;

/// Key identifying a profiled block configuration at a given input
/// resolution.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct BlockKey {
    block: BlockConfig,
    in_h: usize,
    in_w: usize,
}

/// A memoised per-block latency table ("offline profiling").
///
/// # Example
///
/// ```
/// use archspace::zoo;
/// use edgehw::{BlockLatencyTable, DeviceProfile, LatencyEstimator};
///
/// let device = DeviceProfile::raspberry_pi_4();
/// let mut table = BlockLatencyTable::new(device.clone());
/// let arch = zoo::paper_fahana_small(5, 64);
/// let from_table = table.estimate_ms(&arch);
/// let end_to_end = LatencyEstimator::new(device).estimate_ms(&arch);
/// assert!((from_table - end_to_end).abs() / end_to_end < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct BlockLatencyTable {
    estimator: LatencyEstimator,
    entries: HashMap<BlockKey, f64>,
    hits: u64,
    misses: u64,
}

impl BlockLatencyTable {
    /// Creates an empty table for a device.
    pub fn new(device: DeviceProfile) -> Self {
        BlockLatencyTable {
            estimator: LatencyEstimator::new(device),
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of profiled block configurations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no block has been profiled yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cache hit/miss counters (useful for the acceleration benches).
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Latency of one block at a resolution, profiling it on first use.
    pub fn block_latency_ms(&mut self, block: &BlockConfig, in_h: usize, in_w: usize) -> f64 {
        let key = BlockKey {
            block: *block,
            in_h,
            in_w,
        };
        if let Some(&cached) = self.entries.get(&key) {
            self.hits += 1;
            return cached;
        }
        self.misses += 1;
        let latency = self.estimator.estimate_ops(&block.ops(in_h, in_w)).total_ms;
        self.entries.insert(key, latency);
        latency
    }

    /// Estimates a whole architecture by summing its per-block latencies
    /// (plus the stem and classifier, which are profiled as pseudo-blocks
    /// through the underlying estimator).
    pub fn estimate_ms(&mut self, arch: &Architecture) -> f64 {
        let ops = arch.ops();
        // stem is the first op, the classifier is the last one
        let mut total = 0.0;
        if let Some(stem_op) = ops.first() {
            total += self.estimator.estimate_ops(std::slice::from_ref(stem_op)).total_ms;
        }
        if ops.len() > 1 {
            if let Some(head_op) = ops.last() {
                total += self
                    .estimator
                    .estimate_ops(std::slice::from_ref(head_op))
                    .total_ms;
            }
        }
        let mut h = archspace::block::spatial_out(arch.input_size(), arch.stem().reduction());
        let mut w = h;
        for block in arch.blocks() {
            total += self.block_latency_ms(block, h, w);
            if !block.skipped {
                h = archspace::block::spatial_out(h, block.stride());
                w = archspace::block::spatial_out(w, block.stride());
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archspace::zoo;
    use archspace::{BlockConfig, BlockKind};

    #[test]
    fn table_matches_end_to_end_estimator() {
        let device = DeviceProfile::raspberry_pi_4();
        let mut table = BlockLatencyTable::new(device.clone());
        let direct = LatencyEstimator::new(device);
        for entry in zoo::reference_models(5, 64) {
            let a = table.estimate_ms(&entry.architecture);
            let b = direct.estimate_ms(&entry.architecture);
            assert!(
                (a - b).abs() / b < 0.05,
                "{}: table {a:.1}ms vs direct {b:.1}ms",
                entry.model
            );
        }
    }

    #[test]
    fn repeated_blocks_hit_the_cache() {
        let mut table = BlockLatencyTable::new(DeviceProfile::raspberry_pi_4());
        let block = BlockConfig::new(BlockKind::Db, 32, 128, 32, 3);
        let first = table.block_latency_ms(&block, 16, 16);
        let second = table.block_latency_ms(&block, 16, 16);
        assert_eq!(first, second);
        let (hits, misses) = table.hit_miss();
        assert_eq!(hits, 1);
        assert_eq!(misses, 1);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn different_resolution_is_a_different_entry() {
        let mut table = BlockLatencyTable::new(DeviceProfile::raspberry_pi_4());
        let block = BlockConfig::new(BlockKind::Rb, 32, 32, 32, 3);
        let low = table.block_latency_ms(&block, 8, 8);
        let high = table.block_latency_ms(&block, 32, 32);
        assert!(high > low);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn estimating_many_children_reuses_profiles() {
        // same tail block configs at the same resolutions → mostly cache hits
        let mut table = BlockLatencyTable::new(DeviceProfile::raspberry_pi_4());
        let arch = zoo::paper_fahana_small(5, 64);
        table.estimate_ms(&arch);
        let misses_before = table.hit_miss().1;
        for _ in 0..10 {
            table.estimate_ms(&arch);
        }
        assert_eq!(table.hit_miss().1, misses_before, "no new profiling needed");
        assert!(table.hit_miss().0 > 0);
        assert!(!table.is_empty());
    }
}
