//! The offline per-block latency table used during the search.
//!
//! Paper Section 3.2 ➃: "we will test the performance of each block offline
//! on the given hardware device H, based on which we can efficiently
//! estimate the latency during the search process." This module reproduces
//! that methodology: block latencies are profiled once (here: computed with
//! the analytic model, standing in for on-device measurement), memoised, and
//! summed to estimate a whole child network during the search. The final
//! architectures still get an "end-to-end" estimate via
//! [`LatencyEstimator::estimate`](crate::LatencyEstimator::estimate).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use archspace::block::BlockConfig;
use archspace::Architecture;

use crate::device::DeviceProfile;
use crate::latency::LatencyEstimator;

/// Key identifying a profiled block configuration at a given input
/// resolution.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct BlockKey {
    block: BlockConfig,
    in_h: usize,
    in_w: usize,
}

/// Walks an architecture the way the offline profiling methodology does:
/// stem and classifier head through the end-to-end estimator, every block
/// through the per-block `lookup`, threading the spatial resolution.
fn walk_architecture(
    estimator: &LatencyEstimator,
    arch: &Architecture,
    mut lookup: impl FnMut(&BlockConfig, usize, usize) -> f64,
) -> f64 {
    let ops = arch.ops();
    // stem is the first op, the classifier is the last one
    let mut total = 0.0;
    if let Some(stem_op) = ops.first() {
        total += estimator
            .estimate_ops(std::slice::from_ref(stem_op))
            .total_ms;
    }
    if ops.len() > 1 {
        if let Some(head_op) = ops.last() {
            total += estimator
                .estimate_ops(std::slice::from_ref(head_op))
                .total_ms;
        }
    }
    let mut h = archspace::block::spatial_out(arch.input_size(), arch.stem().reduction());
    let mut w = h;
    for block in arch.blocks() {
        total += lookup(block, h, w);
        if !block.skipped {
            h = archspace::block::spatial_out(h, block.stride());
            w = archspace::block::spatial_out(w, block.stride());
        }
    }
    total
}

/// A memoised per-block latency table ("offline profiling").
///
/// # Example
///
/// ```
/// use archspace::zoo;
/// use edgehw::{BlockLatencyTable, DeviceProfile, LatencyEstimator};
///
/// let device = DeviceProfile::raspberry_pi_4();
/// let mut table = BlockLatencyTable::new(device.clone());
/// let arch = zoo::paper_fahana_small(5, 64);
/// let from_table = table.estimate_ms(&arch);
/// let end_to_end = LatencyEstimator::new(device).estimate_ms(&arch);
/// assert!((from_table - end_to_end).abs() / end_to_end < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct BlockLatencyTable {
    estimator: LatencyEstimator,
    entries: HashMap<BlockKey, f64>,
    hits: u64,
    misses: u64,
}

impl BlockLatencyTable {
    /// Creates an empty table for a device.
    pub fn new(device: DeviceProfile) -> Self {
        BlockLatencyTable {
            estimator: LatencyEstimator::new(device),
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of profiled block configurations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no block has been profiled yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cache hit/miss counters (useful for the acceleration benches).
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Latency of one block at a resolution, profiling it on first use.
    pub fn block_latency_ms(&mut self, block: &BlockConfig, in_h: usize, in_w: usize) -> f64 {
        let key = BlockKey {
            block: *block,
            in_h,
            in_w,
        };
        if let Some(&cached) = self.entries.get(&key) {
            self.hits += 1;
            return cached;
        }
        self.misses += 1;
        let latency = self.estimator.estimate_ops(&block.ops(in_h, in_w)).total_ms;
        self.entries.insert(key, latency);
        latency
    }

    /// Estimates a whole architecture by summing its per-block latencies
    /// (plus the stem and classifier, which are profiled as pseudo-blocks
    /// through the underlying estimator).
    pub fn estimate_ms(&mut self, arch: &Architecture) -> f64 {
        // split borrows: the walk reads the estimator while the lookup
        // mutates the entry map and counters
        let BlockLatencyTable {
            estimator,
            entries,
            hits,
            misses,
        } = self;
        walk_architecture(estimator, arch, |block, in_h, in_w| {
            let key = BlockKey {
                block: *block,
                in_h,
                in_w,
            };
            if let Some(&cached) = entries.get(&key) {
                *hits += 1;
                return cached;
            }
            *misses += 1;
            let latency = estimator.estimate_ops(&block.ops(in_h, in_w)).total_ms;
            entries.insert(key, latency);
            latency
        })
    }
}

/// A thread-safe, cheaply clonable per-block latency table.
///
/// Clones share one entry map behind an [`RwLock`] plus atomic hit/miss
/// counters, so many search workers targeting the same device profile pool
/// their offline block profiles — the block a worker profiles first is a
/// cache hit for every other worker. Lookups are `&self`, which is what the
/// campaign runtime needs to run searches concurrently.
///
/// # Example
///
/// ```
/// use archspace::zoo;
/// use edgehw::{DeviceProfile, LatencyEstimator, SharedBlockLatencyTable};
///
/// let device = DeviceProfile::raspberry_pi_4();
/// let table = SharedBlockLatencyTable::new(device.clone());
/// let worker = table.clone(); // shares profiles with `table`
/// let arch = zoo::paper_fahana_small(5, 64);
/// let from_table = worker.estimate_ms(&arch);
/// let end_to_end = LatencyEstimator::new(device).estimate_ms(&arch);
/// assert!((from_table - end_to_end).abs() / end_to_end < 0.05);
/// assert!(table.len() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct SharedBlockLatencyTable {
    estimator: LatencyEstimator,
    entries: Arc<RwLock<HashMap<BlockKey, f64>>>,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
}

impl SharedBlockLatencyTable {
    /// Creates an empty shared table for a device.
    pub fn new(device: DeviceProfile) -> Self {
        SharedBlockLatencyTable {
            estimator: LatencyEstimator::new(device),
            entries: Arc::new(RwLock::new(HashMap::new())),
            hits: Arc::new(AtomicU64::new(0)),
            misses: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The device profile the table profiles against.
    pub fn device(&self) -> &DeviceProfile {
        self.estimator.device()
    }

    /// Number of profiled block configurations.
    pub fn len(&self) -> usize {
        self.entries
            .read()
            .expect("latency table lock poisoned")
            .len()
    }

    /// Whether no block has been profiled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hit/miss counters across all clones.
    ///
    /// Two workers racing on the same unprofiled block may both record a
    /// miss (they compute the same value, so the table stays consistent);
    /// the reported hit-rate is therefore a lower bound under contention.
    pub fn hit_miss(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Latency of one block at a resolution, profiling it on first use.
    pub fn block_latency_ms(&self, block: &BlockConfig, in_h: usize, in_w: usize) -> f64 {
        let key = BlockKey {
            block: *block,
            in_h,
            in_w,
        };
        if let Some(&cached) = self
            .entries
            .read()
            .expect("latency table lock poisoned")
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return cached;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let latency = self.estimator.estimate_ops(&block.ops(in_h, in_w)).total_ms;
        self.entries
            .write()
            .expect("latency table lock poisoned")
            .insert(key, latency);
        latency
    }

    /// Estimates a whole architecture by summing its per-block latencies,
    /// exactly like [`BlockLatencyTable::estimate_ms`] but through the
    /// shared map.
    pub fn estimate_ms(&self, arch: &Architecture) -> f64 {
        walk_architecture(&self.estimator, arch, |block, in_h, in_w| {
            self.block_latency_ms(block, in_h, in_w)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archspace::zoo;
    use archspace::{BlockConfig, BlockKind};

    #[test]
    fn table_matches_end_to_end_estimator() {
        let device = DeviceProfile::raspberry_pi_4();
        let mut table = BlockLatencyTable::new(device.clone());
        let direct = LatencyEstimator::new(device);
        for entry in zoo::reference_models(5, 64) {
            let a = table.estimate_ms(&entry.architecture);
            let b = direct.estimate_ms(&entry.architecture);
            assert!(
                (a - b).abs() / b < 0.05,
                "{}: table {a:.1}ms vs direct {b:.1}ms",
                entry.model
            );
        }
    }

    #[test]
    fn repeated_blocks_hit_the_cache() {
        let mut table = BlockLatencyTable::new(DeviceProfile::raspberry_pi_4());
        let block = BlockConfig::new(BlockKind::Db, 32, 128, 32, 3);
        let first = table.block_latency_ms(&block, 16, 16);
        let second = table.block_latency_ms(&block, 16, 16);
        assert_eq!(first, second);
        let (hits, misses) = table.hit_miss();
        assert_eq!(hits, 1);
        assert_eq!(misses, 1);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn different_resolution_is_a_different_entry() {
        let mut table = BlockLatencyTable::new(DeviceProfile::raspberry_pi_4());
        let block = BlockConfig::new(BlockKind::Rb, 32, 32, 32, 3);
        let low = table.block_latency_ms(&block, 8, 8);
        let high = table.block_latency_ms(&block, 32, 32);
        assert!(high > low);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn shared_table_matches_serial_table() {
        let device = DeviceProfile::raspberry_pi_4();
        let shared = SharedBlockLatencyTable::new(device.clone());
        let mut serial = BlockLatencyTable::new(device);
        for entry in zoo::reference_models(5, 64) {
            let a = shared.estimate_ms(&entry.architecture);
            let b = serial.estimate_ms(&entry.architecture);
            assert_eq!(a, b, "{}: shared and serial tables must agree", entry.model);
        }
        assert_eq!(shared.len(), serial.len());
    }

    #[test]
    fn shared_table_clones_pool_their_profiles() {
        let table = SharedBlockLatencyTable::new(DeviceProfile::raspberry_pi_4());
        let clone = table.clone();
        let block = BlockConfig::new(BlockKind::Db, 32, 128, 32, 3);
        let first = table.block_latency_ms(&block, 16, 16);
        let second = clone.block_latency_ms(&block, 16, 16);
        assert_eq!(first, second);
        let (hits, misses) = table.hit_miss();
        assert_eq!(
            (hits, misses),
            (1, 1),
            "clone's lookup hits the shared entry"
        );
        assert_eq!(table.len(), 1);
        assert!(!clone.is_empty());
    }

    #[test]
    fn shared_table_is_safe_to_use_from_many_threads() {
        let table = SharedBlockLatencyTable::new(DeviceProfile::raspberry_pi_4());
        let arch = zoo::paper_fahana_small(5, 64);
        let expected = LatencyEstimator::new(DeviceProfile::raspberry_pi_4()).estimate_ms(&arch);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let worker = table.clone();
                let arch = &arch;
                scope.spawn(move || {
                    for _ in 0..8 {
                        let got = worker.estimate_ms(arch);
                        assert!((got - expected).abs() / expected < 0.05);
                    }
                });
            }
        });
        let (hits, _misses) = table.hit_miss();
        assert!(hits > 0, "repeat estimates must hit the shared profiles");
    }

    #[test]
    fn shared_table_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedBlockLatencyTable>();
        assert_send_sync::<DeviceProfile>();
        assert_send_sync::<LatencyEstimator>();
    }

    #[test]
    fn estimating_many_children_reuses_profiles() {
        // same tail block configs at the same resolutions → mostly cache hits
        let mut table = BlockLatencyTable::new(DeviceProfile::raspberry_pi_4());
        let arch = zoo::paper_fahana_small(5, 64);
        table.estimate_ms(&arch);
        let misses_before = table.hit_miss().1;
        for _ in 0..10 {
            table.estimate_ms(&arch);
        }
        assert_eq!(table.hit_miss().1, misses_before, "no new profiling needed");
        assert!(table.hit_miss().0 > 0);
        assert!(!table.is_empty());
    }
}
