//! `edgehw` — edge-device latency/storage models for the FaHaNa reproduction.
//!
//! The paper measures inference latency of every candidate and competitor
//! network on two ARM boards (Raspberry Pi 4 Model B and Odroid XU-4) running
//! vanilla PyTorch, and uses a per-block latency table profiled *offline* to
//! estimate latency cheaply during the search (Section 3.2 ➃). We do not have
//! the boards, so this crate substitutes an analytic per-operation latency
//! model calibrated against the latencies the paper publishes in Tables 1
//! and 3:
//!
//! * each primitive op (standard conv, pointwise conv, depthwise conv, dense)
//!   is costed as `max(compute_time, memory_time) + dispatch_overhead`;
//! * per-op *effective* throughput differs by op kind — depthwise and
//!   pointwise convolutions achieve a small fraction of the peak GEMM
//!   throughput under PyTorch on ARM, which is why MobileNetV2 measures
//!   slower than ResNet-50 on the Pi in the paper despite having ~10× fewer
//!   FLOPs;
//! * the paper's offline per-block profiling methodology is reproduced by
//!   [`BlockLatencyTable`], which caches per-block latencies and sums them
//!   during the search exactly as the evaluator in Figure 4 ➃ does.
//!
//! # Example
//!
//! ```
//! use archspace::zoo;
//! use edgehw::{DeviceProfile, HardwareSpec, LatencyEstimator};
//!
//! let device = DeviceProfile::raspberry_pi_4();
//! let estimator = LatencyEstimator::new(device.clone());
//! let arch = zoo::mobilenet_v2(5, 224);
//! let latency = estimator.estimate(&arch);
//! let spec = HardwareSpec::new(device, 1500.0);
//! assert!(latency.total_ms > 0.0);
//! assert!(!spec.meets_latency(latency.total_ms));
//! ```

pub mod device;
pub mod latency;
pub mod lut;
pub mod spec;

pub use device::{DeviceKind, DeviceProfile};
pub use latency::{LatencyBreakdown, LatencyEstimator};
pub use lut::{BlockLatencyTable, SharedBlockLatencyTable};
pub use spec::HardwareSpec;
