//! Edge-device profiles.

use serde::{Deserialize, Serialize};

use archspace::block::OpKind;

/// The devices used in the paper's evaluation, plus a generic desktop-class
/// profile for local experimentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Raspberry Pi 4 Model B (Broadcom BCM2711, 4× Cortex-A72 @ 1.5 GHz, 8 GB).
    RaspberryPi4,
    /// Odroid XU-4 (Samsung Exynos 5422, Cortex-A15 + A7, 2 GB).
    OdroidXu4,
    /// A generic desktop-class CPU (not part of the paper; useful for tests).
    Desktop,
}

impl DeviceKind {
    /// Display name used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            DeviceKind::RaspberryPi4 => "Raspberry PI",
            DeviceKind::OdroidXu4 => "Odroid XU-4",
            DeviceKind::Desktop => "Desktop",
        }
    }

    /// Stable machine-readable identifier, used as the device key in
    /// scenario names, report JSON and the campaign artifact store.
    /// [`DeviceKind::from_slug`] inverts it, so persisted artifacts can be
    /// re-keyed to a profile without string heuristics.
    pub fn slug(&self) -> &'static str {
        match self {
            DeviceKind::RaspberryPi4 => "raspberry_pi_4",
            DeviceKind::OdroidXu4 => "odroid_xu4",
            DeviceKind::Desktop => "desktop",
        }
    }

    /// Every device kind, in a stable order (useful for CLIs enumerating
    /// valid `--device` values).
    pub fn all() -> [DeviceKind; 3] {
        [
            DeviceKind::RaspberryPi4,
            DeviceKind::OdroidXu4,
            DeviceKind::Desktop,
        ]
    }

    /// Parses a [`DeviceKind::slug`] (plus a few common aliases) back to
    /// the device kind.
    pub fn from_slug(slug: &str) -> Option<DeviceKind> {
        match slug {
            "raspberry_pi_4" | "raspberry_pi" | "pi4" | "pi" => Some(DeviceKind::RaspberryPi4),
            "odroid_xu4" | "odroid" => Some(DeviceKind::OdroidXu4),
            "desktop" => Some(DeviceKind::Desktop),
            _ => None,
        }
    }
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Calibrated performance profile of a device running vanilla PyTorch
/// inference (the paper's deployment stack).
///
/// Throughputs are *effective* GFLOP/s per operation kind — they fold in the
/// framework's kernel efficiency on that device, which is why the depthwise
/// figure is far below the standard-convolution figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Which device this profile describes.
    pub kind: DeviceKind,
    /// Effective throughput for standard k×k convolutions (GFLOP/s).
    pub standard_gflops: f64,
    /// Effective throughput for 1×1 convolutions (GFLOP/s).
    pub pointwise_gflops: f64,
    /// Effective throughput for depthwise convolutions (GFLOP/s).
    pub depthwise_gflops: f64,
    /// Effective throughput for dense layers (GFLOP/s).
    pub dense_gflops: f64,
    /// Usable memory bandwidth (GB/s).
    pub memory_bandwidth_gbps: f64,
    /// Fixed per-operation dispatch overhead (ms) — kernel launch, layout
    /// conversion and framework bookkeeping.
    pub per_op_overhead_ms: f64,
    /// Available RAM in MB (used for storage-fit checks).
    pub memory_mb: f64,
}

impl DeviceProfile {
    /// Profile of the Raspberry Pi 4 Model B, calibrated so the reference
    /// networks of the paper's Table 3 land near their published latencies.
    pub fn raspberry_pi_4() -> Self {
        DeviceProfile {
            kind: DeviceKind::RaspberryPi4,
            standard_gflops: 12.0,
            pointwise_gflops: 0.6,
            depthwise_gflops: 0.15,
            dense_gflops: 2.0,
            memory_bandwidth_gbps: 3.0,
            per_op_overhead_ms: 8.0,
            memory_mb: 8192.0,
        }
    }

    /// Profile of the Odroid XU-4, calibrated the same way (older big.LITTLE
    /// cores: lower GEMM throughput, similar dispatch overhead).
    pub fn odroid_xu4() -> Self {
        DeviceProfile {
            kind: DeviceKind::OdroidXu4,
            standard_gflops: 2.5,
            pointwise_gflops: 0.2,
            depthwise_gflops: 0.05,
            dense_gflops: 1.0,
            memory_bandwidth_gbps: 1.5,
            per_op_overhead_ms: 12.0,
            memory_mb: 2048.0,
        }
    }

    /// A generic desktop-class profile (roughly 2 orders of magnitude faster
    /// than the boards). Not used in any paper experiment.
    pub fn desktop() -> Self {
        DeviceProfile {
            kind: DeviceKind::Desktop,
            standard_gflops: 250.0,
            pointwise_gflops: 120.0,
            depthwise_gflops: 30.0,
            dense_gflops: 150.0,
            memory_bandwidth_gbps: 25.0,
            per_op_overhead_ms: 0.05,
            memory_mb: 32768.0,
        }
    }

    /// Builds a profile for a device kind.
    pub fn for_kind(kind: DeviceKind) -> Self {
        match kind {
            DeviceKind::RaspberryPi4 => DeviceProfile::raspberry_pi_4(),
            DeviceKind::OdroidXu4 => DeviceProfile::odroid_xu4(),
            DeviceKind::Desktop => DeviceProfile::desktop(),
        }
    }

    /// Effective throughput (GFLOP/s) for an operation kind.
    pub fn throughput(&self, kind: OpKind) -> f64 {
        match kind {
            OpKind::Standard => self.standard_gflops,
            OpKind::Pointwise => self.pointwise_gflops,
            OpKind::Depthwise => self.depthwise_gflops,
            OpKind::Dense => self.dense_gflops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn board_profiles_are_slower_than_desktop() {
        let pi = DeviceProfile::raspberry_pi_4();
        let odroid = DeviceProfile::odroid_xu4();
        let desktop = DeviceProfile::desktop();
        assert!(pi.standard_gflops < desktop.standard_gflops);
        assert!(odroid.standard_gflops < pi.standard_gflops);
    }

    #[test]
    fn depthwise_is_least_efficient_op_on_boards() {
        for profile in [DeviceProfile::raspberry_pi_4(), DeviceProfile::odroid_xu4()] {
            assert!(profile.depthwise_gflops < profile.pointwise_gflops);
            assert!(profile.pointwise_gflops < profile.standard_gflops);
        }
    }

    #[test]
    fn throughput_dispatches_on_op_kind() {
        let pi = DeviceProfile::raspberry_pi_4();
        assert_eq!(pi.throughput(OpKind::Standard), pi.standard_gflops);
        assert_eq!(pi.throughput(OpKind::Depthwise), pi.depthwise_gflops);
        assert_eq!(pi.throughput(OpKind::Pointwise), pi.pointwise_gflops);
        assert_eq!(pi.throughput(OpKind::Dense), pi.dense_gflops);
    }

    #[test]
    fn for_kind_round_trips() {
        for kind in [
            DeviceKind::RaspberryPi4,
            DeviceKind::OdroidXu4,
            DeviceKind::Desktop,
        ] {
            assert_eq!(DeviceProfile::for_kind(kind).kind, kind);
        }
        assert_eq!(DeviceKind::RaspberryPi4.label(), "Raspberry PI");
    }

    #[test]
    fn odroid_has_less_memory_than_pi() {
        assert!(DeviceProfile::odroid_xu4().memory_mb < DeviceProfile::raspberry_pi_4().memory_mb);
    }

    #[test]
    fn slugs_round_trip_and_are_unique() {
        let all = DeviceKind::all();
        for kind in all {
            assert_eq!(DeviceKind::from_slug(kind.slug()), Some(kind));
        }
        for (index, kind) in all.iter().enumerate() {
            assert!(all[..index].iter().all(|k| k.slug() != kind.slug()));
        }
        assert_eq!(DeviceKind::from_slug("pi"), Some(DeviceKind::RaspberryPi4));
        assert_eq!(DeviceKind::from_slug("gameboy"), None);
    }
}
