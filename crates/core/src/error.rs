//! Error type for the search framework.

use std::error::Error;
use std::fmt;

/// Error returned by the FaHaNa/MONAS search machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum FahanaError {
    /// Architecture construction or decoding failed.
    Architecture(archspace::ArchError),
    /// Evaluating a child network failed.
    Evaluation(evaluator::EvalError),
    /// Controller construction or update failed.
    Controller(neural::NeuralError),
    /// The search configuration is inconsistent.
    InvalidConfig(String),
}

impl fmt::Display for FahanaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FahanaError::Architecture(e) => write!(f, "architecture error: {e}"),
            FahanaError::Evaluation(e) => write!(f, "evaluation error: {e}"),
            FahanaError::Controller(e) => write!(f, "controller error: {e}"),
            FahanaError::InvalidConfig(msg) => write!(f, "invalid search configuration: {msg}"),
        }
    }
}

impl Error for FahanaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FahanaError::Architecture(e) => Some(e),
            FahanaError::Evaluation(e) => Some(e),
            FahanaError::Controller(e) => Some(e),
            FahanaError::InvalidConfig(_) => None,
        }
    }
}

impl From<archspace::ArchError> for FahanaError {
    fn from(err: archspace::ArchError) -> Self {
        FahanaError::Architecture(err)
    }
}

impl From<evaluator::EvalError> for FahanaError {
    fn from(err: evaluator::EvalError) -> Self {
        FahanaError::Evaluation(err)
    }
}

impl From<neural::NeuralError> for FahanaError {
    fn from(err: neural::NeuralError) -> Self {
        FahanaError::Controller(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: FahanaError = archspace::ArchError::InvalidArchitecture("x".into()).into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("architecture"));

        let e: FahanaError = evaluator::EvalError::BadDataset("y".into()).into();
        assert!(e.to_string().contains("y"));

        let e: FahanaError = neural::NeuralError::InvalidConfig("z".into()).into();
        assert!(e.to_string().contains("z"));

        let e = FahanaError::InvalidConfig("w".into());
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync>() {}
        assert_bounds::<FahanaError>();
    }
}
