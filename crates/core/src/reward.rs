//! The reward function of Eq. 1 and its configuration.

use serde::{Deserialize, Serialize};

/// Configuration of the reward (paper Eq. 1).
///
/// `R = α·A − β·U` when the latency and accuracy constraints are met, and
/// `−1` otherwise. `α = β = 1` in the paper's evaluation. The optional
/// `soft_constraints` mode replaces the hard `−1` with a graded penalty and
/// exists only for the ablation bench (`bench_constraint_mode`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardConfig {
    /// Weight of the accuracy term (α).
    pub alpha: f64,
    /// Weight of the unfairness term (β).
    pub beta: f64,
    /// Accuracy constraint `AC` (fraction).
    pub accuracy_constraint: f64,
    /// Timing constraint `TC` in milliseconds.
    pub timing_constraint_ms: f64,
    /// If `true`, constraint violations are penalised proportionally rather
    /// than with a flat −1 (ablation only; the paper uses hard constraints).
    pub soft_constraints: bool,
}

impl Default for RewardConfig {
    fn default() -> Self {
        RewardConfig {
            alpha: 1.0,
            beta: 1.0,
            accuracy_constraint: 0.81,
            timing_constraint_ms: 1500.0,
            soft_constraints: false,
        }
    }
}

/// The reward of one episode, with the constraint outcome attached.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reward {
    /// The scalar value fed to the policy gradient.
    pub value: f64,
    /// Whether the child met both constraints ("valid" in Table 2).
    pub valid: bool,
}

impl RewardConfig {
    /// Evaluates Eq. 1 for a child network.
    ///
    /// # Example
    ///
    /// ```
    /// use fahana::RewardConfig;
    ///
    /// let cfg = RewardConfig::default();
    /// // MobileNetV2's published numbers: accuracy 81.05%, unfairness 0.2325,
    /// // and it meets the relaxed latency constraint → reward ≈ 0.58
    /// let r = cfg.compute(0.8105, 0.2325, 1000.0);
    /// assert!((r.value - 0.578).abs() < 0.01);
    /// assert!(r.valid);
    /// // violating the timing constraint yields the flat −1
    /// assert_eq!(cfg.compute(0.9, 0.0, 2000.0).value, -1.0);
    /// ```
    pub fn compute(&self, accuracy: f64, unfairness: f64, latency_ms: f64) -> Reward {
        let meets_latency = latency_ms <= self.timing_constraint_ms;
        let meets_accuracy = accuracy >= self.accuracy_constraint;
        let valid = meets_latency && meets_accuracy;
        if valid {
            Reward {
                value: self.alpha * accuracy - self.beta * unfairness,
                valid,
            }
        } else if self.soft_constraints {
            // graded penalty: how far past the constraints the child is
            let latency_excess =
                ((latency_ms - self.timing_constraint_ms) / self.timing_constraint_ms).max(0.0);
            let accuracy_deficit = (self.accuracy_constraint - accuracy).max(0.0);
            Reward {
                value: -(0.2 + latency_excess + 2.0 * accuracy_deficit).min(1.0),
                valid,
            }
        } else {
            Reward { value: -1.0, valid }
        }
    }

    /// The best achievable reward (all-correct, perfectly fair model).
    pub fn ideal(&self) -> f64 {
        self.alpha
    }
}

/// Exponential-moving-average baseline used by the policy gradient (the
/// `b` of Eq. 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmaBaseline {
    decay: f64,
    value: Option<f64>,
}

impl EmaBaseline {
    /// Creates a baseline with the given decay (0.95 is typical).
    pub fn new(decay: f64) -> Self {
        EmaBaseline { decay, value: None }
    }

    /// Current baseline value (0 until the first observation).
    pub fn value(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }

    /// Updates the baseline with a new reward and returns the advantage
    /// (`R − b`, using the baseline *before* the update).
    pub fn advantage(&mut self, reward: f64) -> f64 {
        let before = self.value.unwrap_or(reward);
        let advantage = reward - before;
        self.value = Some(self.decay * before + (1.0 - self.decay) * reward);
        advantage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn valid_reward_is_alpha_a_minus_beta_u() {
        let cfg = RewardConfig {
            alpha: 2.0,
            beta: 0.5,
            ..RewardConfig::default()
        };
        let r = cfg.compute(0.9, 0.2, 100.0);
        assert!(r.valid);
        assert!((r.value - (2.0 * 0.9 - 0.5 * 0.2)).abs() < 1e-12);
    }

    #[test]
    fn constraint_violations_return_minus_one() {
        let cfg = RewardConfig::default();
        assert_eq!(cfg.compute(0.5, 0.1, 100.0).value, -1.0, "accuracy too low");
        assert_eq!(
            cfg.compute(0.9, 0.1, 9999.0).value,
            -1.0,
            "latency too high"
        );
        assert!(!cfg.compute(0.9, 0.1, 9999.0).valid);
    }

    #[test]
    fn table3_reward_column_is_reproduced() {
        // Table 3 reports rewards for the valid G1 models with AC=81%:
        // MobileNetV2 0.58, ProxylessNAS(M) 0.50, FaHaNa-Small 0.62.
        let cfg = RewardConfig {
            timing_constraint_ms: f64::INFINITY,
            ..RewardConfig::default()
        };
        let mbv2 = cfg.compute(0.8105, 0.2325, 0.0).value;
        let proxyless = cfg.compute(0.8127, 0.3094, 0.0).value;
        let small = cfg.compute(0.8128, 0.1973, 0.0).value;
        assert!((mbv2 - 0.58).abs() < 0.005);
        assert!((proxyless - 0.50).abs() < 0.005);
        assert!((small - 0.62).abs() < 0.005);
    }

    #[test]
    fn soft_mode_grades_violations() {
        let cfg = RewardConfig {
            soft_constraints: true,
            ..RewardConfig::default()
        };
        let mild = cfg.compute(0.80, 0.1, 1600.0).value;
        let severe = cfg.compute(0.40, 0.1, 6000.0).value;
        assert!(mild > severe);
        assert!(mild < 0.0 && severe >= -1.0);
    }

    #[test]
    fn ema_baseline_tracks_rewards() {
        let mut baseline = EmaBaseline::new(0.9);
        assert_eq!(baseline.value(), 0.0);
        let first_advantage = baseline.advantage(1.0);
        // first observation: baseline initialised to the reward, advantage 0
        assert_eq!(first_advantage, 0.0);
        for _ in 0..50 {
            baseline.advantage(0.5);
        }
        assert!((baseline.value() - 0.5).abs() < 0.05);
        // a better-than-baseline reward has positive advantage
        assert!(baseline.advantage(0.9) > 0.0);
    }

    proptest! {
        #[test]
        fn prop_valid_rewards_are_bounded(acc in 0.81f64..1.0, unfair in 0.0f64..1.0) {
            let cfg = RewardConfig::default();
            let r = cfg.compute(acc, unfair, 0.0);
            prop_assert!(r.valid);
            prop_assert!(r.value <= cfg.ideal());
            prop_assert!(r.value >= -cfg.beta);
        }

        #[test]
        fn prop_reward_monotone_in_accuracy(a1 in 0.81f64..0.9, delta in 0.0f64..0.09, unfair in 0.0f64..0.5) {
            let cfg = RewardConfig::default();
            let lo = cfg.compute(a1, unfair, 0.0).value;
            let hi = cfg.compute(a1 + delta, unfair, 0.0).value;
            prop_assert!(hi >= lo);
        }
    }
}
