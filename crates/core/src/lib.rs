//! `fahana` — Fairness- and Hardware-aware Neural Architecture Search.
//!
//! This crate implements the paper's primary contribution (DAC 2022,
//! "The Larger The Fairer? Small Neural Networks Can Achieve Fairness for
//! Edge Devices"): a reinforcement-learning NAS framework that finds neural
//! architectures balancing accuracy, fairness and hardware efficiency.
//!
//! The four components of Figure 4 map onto the following modules:
//!
//! | Paper component | Module |
//! |---|---|
//! | ➀ RNN controller + Monte-Carlo policy gradient (Eq. 2) | [`controller`] |
//! | ➁ Block-based search space | re-exported from [`archspace`] |
//! | ➂ Backbone producer with the freezing method | [`archspace::backbone`] + [`evaluator::variation`] |
//! | ➃ Evaluator/trainer with the reward of Eq. 1 | [`reward`] + [`evaluator`] + [`edgehw`] |
//!
//! The search loop itself lives in [`search`]; the MONAS baseline (the
//! multi-objective NAS the paper compares against in Table 2) in [`monas`];
//! Pareto-frontier utilities for Figures 5 and 6 in [`pareto`].
//!
//! # Quick start
//!
//! ```
//! use fahana::{FahanaConfig, FahanaSearch};
//!
//! let config = FahanaConfig {
//!     episodes: 12,
//!     seed: 7,
//!     ..FahanaConfig::default()
//! };
//! let outcome = FahanaSearch::new(config)?.run()?;
//! assert_eq!(outcome.history.len(), 12);
//! assert!(outcome.space_log10_size > 0.0);
//! # Ok::<(), fahana::FahanaError>(())
//! ```

pub mod controller;
pub mod error;
pub mod monas;
pub mod pareto;
pub mod reward;
pub mod search;

pub use controller::{ControllerConfig, EpisodeSample, RnnController};
pub use error::FahanaError;
pub use monas::{MonasConfig, MonasSearch};
pub use pareto::{merge_frontiers, pareto_frontier, ParetoPoint};
pub use reward::{Reward, RewardConfig};
pub use search::{DiscoveredNetwork, EpisodeRecord, FahanaConfig, FahanaSearch, SearchOutcome};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, FahanaError>;
