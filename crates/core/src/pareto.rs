//! Pareto-frontier utilities for Figures 5 and 6.

use serde::{Deserialize, Serialize};

/// A point in a two-objective trade-off space.
///
/// By convention the first objective (`maximize`) is to be maximised (e.g.
/// accuracy, reward) and the second (`minimize`) to be minimised (e.g.
/// unfairness, model size).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// Label of the point (architecture name).
    pub label: String,
    /// Objective to maximise.
    pub maximize: f64,
    /// Objective to minimise.
    pub minimize: f64,
}

impl ParetoPoint {
    /// Creates a labelled point.
    pub fn new(label: impl Into<String>, maximize: f64, minimize: f64) -> Self {
        ParetoPoint {
            label: label.into(),
            maximize,
            minimize,
        }
    }

    /// Whether `self` dominates `other` (no worse in both objectives,
    /// strictly better in at least one).
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        let no_worse = self.maximize >= other.maximize && self.minimize <= other.minimize;
        let strictly_better = self.maximize > other.maximize || self.minimize < other.minimize;
        no_worse && strictly_better
    }
}

/// Returns the non-dominated subset of `points`, sorted by the maximised
/// objective (descending).
///
/// # Example
///
/// ```
/// use fahana::{pareto_frontier, ParetoPoint};
///
/// let points = vec![
///     ParetoPoint::new("a", 0.80, 0.20),
///     ParetoPoint::new("b", 0.85, 0.25),
///     ParetoPoint::new("dominated", 0.79, 0.30),
/// ];
/// let frontier = pareto_frontier(&points);
/// assert_eq!(frontier.len(), 2);
/// assert!(frontier.iter().all(|p| p.label != "dominated"));
/// ```
pub fn pareto_frontier(points: &[ParetoPoint]) -> Vec<ParetoPoint> {
    let mut frontier: Vec<ParetoPoint> = points
        .iter()
        .filter(|candidate| {
            !points
                .iter()
                .any(|other| other != *candidate && other.dominates(candidate))
        })
        .cloned()
        .collect();
    frontier.sort_by(|a, b| {
        b.maximize
            .partial_cmp(&a.maximize)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    frontier.dedup_by(|a, b| a.maximize == b.maximize && a.minimize == b.minimize);
    frontier
}

/// Merges several frontiers (or arbitrary point sets) into one combined
/// Pareto frontier.
///
/// This is the cross-campaign operation of the artifact store: each
/// completed campaign contributes its own frontier, and a query over many
/// campaigns needs the non-dominated subset of their union. The result is
/// identical to running [`pareto_frontier`] on the concatenation of all
/// inputs, so the merge is idempotent (`merge(f, f) == f` up to
/// deduplication) and commutative in the objective values (label ties are
/// broken by first occurrence, like `pareto_frontier` itself).
///
/// # Example
///
/// ```
/// use fahana::{merge_frontiers, ParetoPoint};
///
/// let run_a = vec![ParetoPoint::new("a", 0.80, 0.20)];
/// let run_b = vec![ParetoPoint::new("b", 0.85, 0.15)];
/// let merged = merge_frontiers([run_a, run_b]);
/// assert_eq!(merged.len(), 1);
/// assert_eq!(merged[0].label, "b");
/// ```
pub fn merge_frontiers<I>(frontiers: I) -> Vec<ParetoPoint>
where
    I: IntoIterator<Item = Vec<ParetoPoint>>,
{
    let combined: Vec<ParetoPoint> = frontiers.into_iter().flatten().collect();
    pareto_frontier(&combined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dominance_requires_strict_improvement_somewhere() {
        let a = ParetoPoint::new("a", 0.8, 0.2);
        let same = ParetoPoint::new("same", 0.8, 0.2);
        let better = ParetoPoint::new("better", 0.9, 0.2);
        let worse = ParetoPoint::new("worse", 0.7, 0.3);
        assert!(!a.dominates(&same));
        assert!(better.dominates(&a));
        assert!(a.dominates(&worse));
        assert!(!worse.dominates(&a));
    }

    #[test]
    fn frontier_excludes_dominated_points() {
        let points = vec![
            ParetoPoint::new("fair-small", 0.81, 0.15),
            ParetoPoint::new("fair-large", 0.84, 0.17),
            ParetoPoint::new("dominated-1", 0.80, 0.25),
            ParetoPoint::new("dominated-2", 0.83, 0.20),
            ParetoPoint::new("accurate-unfair", 0.86, 0.30),
        ];
        let frontier = pareto_frontier(&points);
        let labels: Vec<&str> = frontier.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["accurate-unfair", "fair-large", "fair-small"]);
    }

    #[test]
    fn incomparable_points_all_survive() {
        let points = vec![
            ParetoPoint::new("a", 0.9, 0.5),
            ParetoPoint::new("b", 0.8, 0.3),
            ParetoPoint::new("c", 0.7, 0.1),
        ];
        assert_eq!(pareto_frontier(&points).len(), 3);
    }

    #[test]
    fn empty_input_gives_empty_frontier() {
        assert!(pareto_frontier(&[]).is_empty());
    }

    fn values(frontier: &[ParetoPoint]) -> Vec<(f64, f64)> {
        frontier.iter().map(|p| (p.maximize, p.minimize)).collect()
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        assert!(merge_frontiers(Vec::<Vec<ParetoPoint>>::new()).is_empty());
        assert!(merge_frontiers([Vec::new(), Vec::new()]).is_empty());
    }

    #[test]
    fn merge_is_idempotent() {
        let frontier = pareto_frontier(&[
            ParetoPoint::new("fair", 0.81, 0.12),
            ParetoPoint::new("accurate", 0.88, 0.25),
            ParetoPoint::new("dominated", 0.80, 0.30),
        ]);
        let merged = merge_frontiers([frontier.clone()]);
        assert_eq!(merged, frontier);
        let twice = merge_frontiers([frontier.clone(), frontier.clone()]);
        assert_eq!(values(&twice), values(&frontier));
    }

    #[test]
    fn merge_is_commutative_in_objective_values() {
        let a = vec![
            ParetoPoint::new("a1", 0.90, 0.40),
            ParetoPoint::new("a2", 0.70, 0.10),
        ];
        let b = vec![
            ParetoPoint::new("b1", 0.85, 0.20),
            ParetoPoint::new("b2", 0.95, 0.50),
        ];
        let ab = merge_frontiers([a.clone(), b.clone()]);
        let ba = merge_frontiers([b, a]);
        assert_eq!(values(&ab), values(&ba));
    }

    #[test]
    fn merge_drops_cross_frontier_dominated_points() {
        // each input is a valid frontier on its own, but campaign B
        // dominates most of campaign A once they are combined
        let campaign_a = vec![
            ParetoPoint::new("a-accurate", 0.84, 0.30),
            ParetoPoint::new("a-fair", 0.78, 0.18),
        ];
        let campaign_b = vec![
            ParetoPoint::new("b-accurate", 0.86, 0.25),
            ParetoPoint::new("b-fair", 0.80, 0.15),
        ];
        let merged = merge_frontiers([campaign_a.clone(), campaign_b]);
        let labels: Vec<&str> = merged.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["b-accurate", "b-fair"]);
        // and equals a frontier over the flat union
        let mut union = campaign_a;
        union.extend(merged.clone());
        assert_eq!(values(&pareto_frontier(&union)), values(&merged));
    }

    #[test]
    fn merge_keeps_mutually_incomparable_points_from_all_inputs() {
        let merged = merge_frontiers([
            vec![ParetoPoint::new("x", 0.9, 0.5)],
            vec![ParetoPoint::new("y", 0.8, 0.3)],
            vec![ParetoPoint::new("z", 0.7, 0.1)],
        ]);
        assert_eq!(merged.len(), 3);
        // sorted by the maximised objective, descending
        assert!(merged.windows(2).all(|w| w[0].maximize >= w[1].maximize));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_frontier_points_are_mutually_non_dominated(
            xs in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..30)
        ) {
            let points: Vec<ParetoPoint> = xs
                .iter()
                .enumerate()
                .map(|(i, (a, b))| ParetoPoint::new(format!("p{i}"), *a, *b))
                .collect();
            let frontier = pareto_frontier(&points);
            prop_assert!(!frontier.is_empty());
            for p in &frontier {
                for q in &frontier {
                    prop_assert!(!p.dominates(q) || p == q || (p.maximize == q.maximize && p.minimize == q.minimize));
                }
            }
            // every excluded point is dominated by someone on the frontier
            for p in &points {
                if !frontier.iter().any(|f| f.maximize == p.maximize && f.minimize == p.minimize) {
                    prop_assert!(points.iter().any(|q| q.dominates(p)));
                }
            }
        }
    }
}
