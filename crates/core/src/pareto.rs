//! Pareto-frontier utilities for Figures 5 and 6.

use serde::{Deserialize, Serialize};

/// A point in a two-objective trade-off space.
///
/// By convention the first objective (`maximize`) is to be maximised (e.g.
/// accuracy, reward) and the second (`minimize`) to be minimised (e.g.
/// unfairness, model size).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// Label of the point (architecture name).
    pub label: String,
    /// Objective to maximise.
    pub maximize: f64,
    /// Objective to minimise.
    pub minimize: f64,
}

impl ParetoPoint {
    /// Creates a labelled point.
    pub fn new(label: impl Into<String>, maximize: f64, minimize: f64) -> Self {
        ParetoPoint {
            label: label.into(),
            maximize,
            minimize,
        }
    }

    /// Whether `self` dominates `other` (no worse in both objectives,
    /// strictly better in at least one).
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        let no_worse = self.maximize >= other.maximize && self.minimize <= other.minimize;
        let strictly_better = self.maximize > other.maximize || self.minimize < other.minimize;
        no_worse && strictly_better
    }
}

/// Returns the non-dominated subset of `points`, sorted by the maximised
/// objective (descending).
///
/// # Example
///
/// ```
/// use fahana::{pareto_frontier, ParetoPoint};
///
/// let points = vec![
///     ParetoPoint::new("a", 0.80, 0.20),
///     ParetoPoint::new("b", 0.85, 0.25),
///     ParetoPoint::new("dominated", 0.79, 0.30),
/// ];
/// let frontier = pareto_frontier(&points);
/// assert_eq!(frontier.len(), 2);
/// assert!(frontier.iter().all(|p| p.label != "dominated"));
/// ```
pub fn pareto_frontier(points: &[ParetoPoint]) -> Vec<ParetoPoint> {
    let mut frontier: Vec<ParetoPoint> = points
        .iter()
        .filter(|candidate| {
            !points
                .iter()
                .any(|other| other != *candidate && other.dominates(candidate))
        })
        .cloned()
        .collect();
    frontier.sort_by(|a, b| {
        b.maximize
            .partial_cmp(&a.maximize)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    frontier.dedup_by(|a, b| a.maximize == b.maximize && a.minimize == b.minimize);
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dominance_requires_strict_improvement_somewhere() {
        let a = ParetoPoint::new("a", 0.8, 0.2);
        let same = ParetoPoint::new("same", 0.8, 0.2);
        let better = ParetoPoint::new("better", 0.9, 0.2);
        let worse = ParetoPoint::new("worse", 0.7, 0.3);
        assert!(!a.dominates(&same));
        assert!(better.dominates(&a));
        assert!(a.dominates(&worse));
        assert!(!worse.dominates(&a));
    }

    #[test]
    fn frontier_excludes_dominated_points() {
        let points = vec![
            ParetoPoint::new("fair-small", 0.81, 0.15),
            ParetoPoint::new("fair-large", 0.84, 0.17),
            ParetoPoint::new("dominated-1", 0.80, 0.25),
            ParetoPoint::new("dominated-2", 0.83, 0.20),
            ParetoPoint::new("accurate-unfair", 0.86, 0.30),
        ];
        let frontier = pareto_frontier(&points);
        let labels: Vec<&str> = frontier.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["accurate-unfair", "fair-large", "fair-small"]);
    }

    #[test]
    fn incomparable_points_all_survive() {
        let points = vec![
            ParetoPoint::new("a", 0.9, 0.5),
            ParetoPoint::new("b", 0.8, 0.3),
            ParetoPoint::new("c", 0.7, 0.1),
        ];
        assert_eq!(pareto_frontier(&points).len(), 3);
    }

    #[test]
    fn empty_input_gives_empty_frontier() {
        assert!(pareto_frontier(&[]).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_frontier_points_are_mutually_non_dominated(
            xs in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..30)
        ) {
            let points: Vec<ParetoPoint> = xs
                .iter()
                .enumerate()
                .map(|(i, (a, b))| ParetoPoint::new(format!("p{i}"), *a, *b))
                .collect();
            let frontier = pareto_frontier(&points);
            prop_assert!(!frontier.is_empty());
            for p in &frontier {
                for q in &frontier {
                    prop_assert!(!p.dominates(q) || p == q || (p.maximize == q.maximize && p.minimize == q.minimize));
                }
            }
            // every excluded point is dominated by someone on the frontier
            for p in &points {
                if !frontier.iter().any(|f| f.maximize == p.maximize && f.minimize == p.minimize) {
                    prop_assert!(points.iter().any(|q| q.dominates(p)));
                }
            }
        }
    }
}
