//! The MONAS baseline: multi-objective NAS with fairness bolted on.
//!
//! Table 2 compares FaHaNa against MONAS [32] with fairness added as an
//! extra objective. Architecturally the baseline differs from FaHaNa in two
//! ways: it searches *every* block of the backbone (no frozen header, so the
//! space is ~10^19 instead of ~10^9) and every child is trained end to end
//! (no pretrained header parameters to reuse), which is what makes its
//! search an order of magnitude slower on the paper's cluster.

use crate::search::{FahanaConfig, FahanaSearch, SearchOutcome};
use crate::Result;

/// Configuration of a MONAS baseline run. It wraps [`FahanaConfig`] and
/// forces the "no freezing" setting.
#[derive(Debug, Clone, Default)]
pub struct MonasConfig {
    /// The underlying search settings (the `use_freezing` flag is ignored
    /// and forced to `false`).
    pub base: FahanaConfig,
}

impl MonasConfig {
    /// Creates a MONAS configuration mirroring a FaHaNa configuration, so
    /// the two can be compared under identical constraints (Table 2).
    pub fn matching(fahana: &FahanaConfig) -> Self {
        MonasConfig {
            base: fahana.clone(),
        }
    }
}

/// The MONAS baseline search engine.
#[derive(Debug)]
pub struct MonasSearch {
    inner: FahanaSearch,
}

impl MonasSearch {
    /// Builds the baseline search (full backbone, no freezing).
    ///
    /// # Errors
    ///
    /// Same conditions as [`FahanaSearch::new`].
    pub fn new(config: MonasConfig) -> Result<Self> {
        let base = FahanaConfig {
            use_freezing: false,
            ..config.base
        };
        Ok(MonasSearch {
            inner: FahanaSearch::new(base)?,
        })
    }

    /// Number of searchable slots (the whole backbone).
    pub fn searchable_slots(&self) -> usize {
        self.inner.searchable_slots()
    }

    /// Runs the baseline with the surrogate evaluator.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FahanaSearch::run`](crate::FahanaSearch::run).
    pub fn run(self) -> Result<SearchOutcome> {
        self.inner.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dermsim::DermatologyConfig;

    fn tiny_base(episodes: usize) -> FahanaConfig {
        FahanaConfig {
            episodes,
            dataset: DermatologyConfig {
                samples: 200,
                image_size: 8,
                ..DermatologyConfig::default()
            },
            variation_batch: 4,
            seed: 11,
            ..FahanaConfig::default()
        }
    }

    #[test]
    fn monas_searches_the_full_backbone() {
        let monas = MonasSearch::new(MonasConfig { base: tiny_base(5) }).unwrap();
        // MobileNetV2 backbone has 17 blocks, all searchable for MONAS
        assert_eq!(monas.searchable_slots(), 17);
    }

    #[test]
    fn monas_matching_preserves_constraints() {
        let fahana_cfg = tiny_base(5);
        let monas_cfg = MonasConfig::matching(&fahana_cfg);
        assert_eq!(
            monas_cfg.base.reward.timing_constraint_ms,
            fahana_cfg.reward.timing_constraint_ms
        );
    }

    #[test]
    fn monas_run_produces_an_outcome_with_larger_space() {
        let fahana = crate::FahanaSearch::new(tiny_base(10))
            .unwrap()
            .run()
            .unwrap();
        let monas = MonasSearch::new(MonasConfig {
            base: tiny_base(10),
        })
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(monas.history.len(), 10);
        assert!(monas.space_log10_size > fahana.space_log10_size);
        assert_eq!(monas.frozen_blocks, 0);
    }
}
