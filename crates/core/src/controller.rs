//! The RNN controller and its Monte-Carlo policy-gradient update (Eq. 2).

use ftensor::{SeededRng, Tensor};
use neural::{Adam, Dense, Layer, LstmCell, LstmState, Optimizer};
use serde::{Deserialize, Serialize};

use crate::error::FahanaError;
use crate::reward::EmaBaseline;
use crate::Result;

/// Hyperparameters of the controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Hidden width of the LSTM.
    pub hidden_size: usize,
    /// Adam learning rate for controller updates.
    pub learning_rate: f32,
    /// Per-step discount factor `γ` of Eq. 2.
    pub discount: f64,
    /// Decay of the exponential-moving-average baseline `b`.
    pub baseline_decay: f64,
    /// Seed for action sampling and weight initialisation.
    pub seed: u64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            hidden_size: 64,
            learning_rate: 0.006,
            discount: 0.99,
            baseline_decay: 0.9,
            seed: 0,
        }
    }
}

/// One sampled episode: the controller's architecture decisions plus the
/// total log-probability of having sampled them.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeSample {
    /// One categorical action per decision step.
    pub actions: Vec<usize>,
    /// Sum of the log-probabilities of the sampled actions.
    pub log_prob: f64,
}

/// The recurrent controller of Figure 4 ➀.
///
/// Every architecture decision (block kind, kernel, `CH2`, `CH3`, skip — for
/// every searchable slot) is one LSTM step: the previous decision is fed
/// back one-hot, the hidden state is projected by a per-step linear head to
/// the decision's choice count, and the action is sampled from the softmax.
/// Updates follow the Monte-Carlo policy gradient of Eq. 2 with a discount
/// and an EMA baseline.
#[derive(Debug)]
pub struct RnnController {
    cardinalities: Vec<usize>,
    input_size: usize,
    lstm: LstmCell,
    heads: Vec<Dense>,
    lstm_optimizer: Adam,
    head_optimizers: Vec<Adam>,
    baseline: EmaBaseline,
    config: ControllerConfig,
    rng: SeededRng,
    updates: usize,
}

impl RnnController {
    /// Creates a controller for a decision sequence with the given choice
    /// cardinalities (see
    /// [`SearchSpace::decision_cardinalities`](archspace::SearchSpace::decision_cardinalities)).
    ///
    /// # Errors
    ///
    /// Returns an error if `cardinalities` is empty or contains a zero.
    pub fn new(cardinalities: Vec<usize>, config: ControllerConfig) -> Result<Self> {
        if cardinalities.is_empty() {
            return Err(FahanaError::InvalidConfig(
                "controller needs at least one decision".into(),
            ));
        }
        if cardinalities.contains(&0) {
            return Err(FahanaError::InvalidConfig(
                "every decision needs at least one choice".into(),
            ));
        }
        let max_card = *cardinalities.iter().max().expect("non-empty");
        let input_size = max_card + 1; // +1 for the start token
        let mut rng = SeededRng::new(config.seed);
        let lstm = LstmCell::new(input_size, config.hidden_size, &mut rng)?;
        let heads: Vec<Dense> = cardinalities
            .iter()
            .map(|&card| Dense::new(config.hidden_size, card, &mut rng))
            .collect();
        let head_optimizers = (0..heads.len())
            .map(|_| Adam::new(config.learning_rate))
            .collect();
        Ok(RnnController {
            cardinalities,
            input_size,
            lstm,
            heads,
            lstm_optimizer: Adam::new(config.learning_rate),
            head_optimizers,
            baseline: EmaBaseline::new(config.baseline_decay),
            config,
            rng,
            updates: 0,
        })
    }

    /// Number of decisions per episode.
    pub fn decisions(&self) -> usize {
        self.cardinalities.len()
    }

    /// Number of policy-gradient updates applied so far.
    pub fn update_count(&self) -> usize {
        self.updates
    }

    /// Current value of the EMA reward baseline.
    pub fn baseline(&self) -> f64 {
        self.baseline.value()
    }

    fn input_for(&self, step: usize, previous_action: Option<usize>) -> Tensor {
        let mut x = Tensor::zeros(&[1, self.input_size]);
        let index = match previous_action {
            Some(a) => a.min(self.input_size - 2),
            None => self.input_size - 1,
        };
        let _ = step;
        x.as_mut_slice()[index] = 1.0;
        x
    }

    /// Samples one episode from the current policy.
    ///
    /// # Errors
    ///
    /// Propagates layer errors (which indicate a programming error rather
    /// than a recoverable condition).
    pub fn sample_episode(&mut self) -> Result<EpisodeSample> {
        self.lstm.clear_cache();
        let mut state = LstmState::zeros(1, self.config.hidden_size);
        let mut actions = Vec::with_capacity(self.cardinalities.len());
        let mut log_prob = 0.0f64;
        let mut previous = None;
        for step in 0..self.cardinalities.len() {
            let x = self.input_for(step, previous);
            state = self.lstm.step(&x, &state)?;
            let logits = self.heads[step].forward(&state.h, false)?;
            let probs = logits.softmax().map_err(neural::NeuralError::from)?;
            let action = self.rng.sample_weighted(probs.as_slice());
            log_prob += (probs.as_slice()[action].max(1e-12) as f64).ln();
            actions.push(action);
            previous = Some(action);
        }
        Ok(EpisodeSample { actions, log_prob })
    }

    /// The probability distribution of the first decision (useful for tests
    /// and for inspecting what the controller has learned).
    pub fn first_step_distribution(&mut self) -> Result<Vec<f32>> {
        self.lstm.clear_cache();
        let state = LstmState::zeros(1, self.config.hidden_size);
        let x = self.input_for(0, None);
        let state = self.lstm.step(&x, &state)?;
        let logits = self.heads[0].forward(&state.h, false)?;
        let probs = logits.softmax().map_err(neural::NeuralError::from)?;
        self.lstm.clear_cache();
        Ok(probs.as_slice().to_vec())
    }

    /// Applies one Monte-Carlo policy-gradient update (Eq. 2) from a batch
    /// of episodes and their rewards.
    ///
    /// # Errors
    ///
    /// Returns an error if an episode's action count does not match the
    /// controller's decision count.
    pub fn update(&mut self, episodes: &[(EpisodeSample, f64)]) -> Result<()> {
        if episodes.is_empty() {
            return Ok(());
        }
        let steps = self.cardinalities.len();
        let batch = episodes.len() as f32;
        // zero gradients once per update; they accumulate across episodes
        self.lstm.zero_grad();
        for head in &mut self.heads {
            head.zero_grad();
        }
        for (sample, reward) in episodes {
            if sample.actions.len() != steps {
                return Err(FahanaError::InvalidConfig(format!(
                    "episode has {} actions, controller expects {steps}",
                    sample.actions.len()
                )));
            }
            let advantage = self.baseline.advantage(*reward) as f32;
            // replay the episode with forced actions, accumulating gradients
            self.lstm.clear_cache();
            let mut state = LstmState::zeros(1, self.config.hidden_size);
            let mut grad_h: Vec<Tensor> = Vec::with_capacity(steps);
            let mut previous = None;
            for (t, &action) in sample.actions.iter().enumerate() {
                let x = self.input_for(t, previous);
                state = self.lstm.step(&x, &state)?;
                let logits = self.heads[t].forward(&state.h, true)?;
                let probs = logits.softmax().map_err(neural::NeuralError::from)?;
                // dL/dlogits for L = −Σ γ^{T−t} (R−b) log π(a_t)
                let discount = self.config.discount.powi((steps - 1 - t) as i32) as f32;
                let scale = advantage * discount / batch;
                let mut dlogits = probs.clone();
                dlogits.as_mut_slice()[action] -= 1.0;
                let dlogits = dlogits.scale(scale);
                let dh = self.heads[t].backward(&dlogits)?;
                grad_h.push(dh);
                previous = Some(action);
            }
            self.lstm.backward_through_time(&grad_h)?;
        }
        self.lstm_optimizer.step(&mut self.lstm);
        for (head, optimizer) in self.heads.iter_mut().zip(self.head_optimizers.iter_mut()) {
            optimizer.step(head);
        }
        self.updates += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(cards: Vec<usize>, seed: u64) -> RnnController {
        RnnController::new(
            cards,
            ControllerConfig {
                hidden_size: 24,
                learning_rate: 0.02,
                seed,
                ..ControllerConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn constructor_validates_cardinalities() {
        assert!(RnnController::new(vec![], ControllerConfig::default()).is_err());
        assert!(RnnController::new(vec![3, 0], ControllerConfig::default()).is_err());
        assert!(RnnController::new(vec![3, 2], ControllerConfig::default()).is_ok());
    }

    #[test]
    fn sampled_actions_respect_cardinalities() {
        let cards = vec![4, 3, 7, 8, 2, 4, 3, 7, 8, 2];
        let mut ctrl = controller(cards.clone(), 1);
        for _ in 0..25 {
            let sample = ctrl.sample_episode().unwrap();
            assert_eq!(sample.actions.len(), cards.len());
            for (a, &c) in sample.actions.iter().zip(cards.iter()) {
                assert!(*a < c, "action {a} out of range for cardinality {c}");
            }
            assert!(sample.log_prob < 0.0);
        }
    }

    #[test]
    fn sampling_is_reproducible_with_a_seed() {
        let mut a = controller(vec![4, 4, 4], 9);
        let mut b = controller(vec![4, 4, 4], 9);
        for _ in 0..5 {
            assert_eq!(
                a.sample_episode().unwrap().actions,
                b.sample_episode().unwrap().actions
            );
        }
    }

    #[test]
    fn policy_gradient_learns_a_simple_bandit() {
        // reward 1 when the first decision picks action 2, else 0 — after a
        // few updates the controller should strongly prefer action 2.
        let mut ctrl = controller(vec![4, 3], 3);
        let before = ctrl.first_step_distribution().unwrap()[2];
        for _ in 0..40 {
            let mut batch = Vec::new();
            for _ in 0..4 {
                let sample = ctrl.sample_episode().unwrap();
                let reward = if sample.actions[0] == 2 { 1.0 } else { 0.0 };
                batch.push((sample, reward));
            }
            ctrl.update(&batch).unwrap();
        }
        let after = ctrl.first_step_distribution().unwrap()[2];
        assert!(
            after > before + 0.2 && after > 0.5,
            "P(action 2) should grow substantially: before={before:.3} after={after:.3}"
        );
        assert_eq!(ctrl.update_count(), 40);
        assert!(ctrl.baseline() > 0.0);
    }

    #[test]
    fn update_rejects_mismatched_episodes() {
        let mut ctrl = controller(vec![4, 3], 5);
        let bad = EpisodeSample {
            actions: vec![0],
            log_prob: -1.0,
        };
        assert!(ctrl.update(&[(bad, 1.0)]).is_err());
        assert!(ctrl.update(&[]).is_ok());
    }

    #[test]
    fn decisions_reports_sequence_length() {
        let ctrl = controller(vec![4, 3, 2, 5], 0);
        assert_eq!(ctrl.decisions(), 4);
    }
}
