//! The FaHaNa search loop (paper Figure 4).

use archspace::backbone::{BackboneProducer, BackboneTemplate};
use archspace::{zoo, Architecture, SearchSpace, SpaceConfig};
use dermsim::{DermatologyConfig, DermatologyGenerator};
use edgehw::{BlockLatencyTable, DeviceProfile};
use evaluator::{
    feature_variation_by_block, Evaluate, SearchCostConfig, SearchCostModel, SurrogateEvaluator,
};
use serde::{Deserialize, Serialize};

use crate::controller::{ControllerConfig, EpisodeSample, RnnController};
use crate::error::FahanaError;
use crate::pareto::{pareto_frontier, ParetoPoint};
use crate::reward::RewardConfig;
use crate::Result;

/// Configuration of a FaHaNa (or MONAS-style) search run.
#[derive(Debug, Clone)]
pub struct FahanaConfig {
    /// Number of reinforcement-learning episodes (the paper uses 500).
    pub episodes: usize,
    /// Episodes per controller update (the `m` of Eq. 2).
    pub episodes_per_update: usize,
    /// Number of disease classes.
    pub classes: usize,
    /// Input resolution used for latency/FLOP accounting.
    pub input_size: usize,
    /// Reward function settings (α, β, `AC`, `TC`).
    pub reward: RewardConfig,
    /// Controller hyperparameters.
    pub controller: ControllerConfig,
    /// Search-space choice lists.
    pub space: SpaceConfig,
    /// Target device for the latency constraint.
    pub device: DeviceProfile,
    /// Optional storage limit in MB.
    pub storage_limit_mb: Option<f64>,
    /// Freezing scale factor γ (the paper uses 0.5).
    pub freeze_gamma: f32,
    /// `true` runs FaHaNa (frozen header); `false` searches the whole
    /// backbone, which is how the MONAS baseline is configured.
    pub use_freezing: bool,
    /// Synthetic dermatology dataset settings.
    pub dataset: DermatologyConfig,
    /// Per-block feature-variation profile of the pretrained backbone used
    /// by the freezing analysis. Defaults to the paper's Figure 3 profile;
    /// set to `None` to re-measure it on a locally lowered backbone with
    /// [`evaluator::feature_variation_by_block`].
    pub variation_profile: Option<Vec<f32>>,
    /// Batch size (per group) for the feature-variation analysis when
    /// `variation_profile` is `None`.
    pub variation_batch: usize,
    /// Search-cost model constants (Table 2's time column).
    pub cost: SearchCostConfig,
    /// Master seed.
    pub seed: u64,
}

impl Default for FahanaConfig {
    fn default() -> Self {
        FahanaConfig {
            episodes: 100,
            episodes_per_update: 5,
            classes: 5,
            input_size: 224,
            reward: RewardConfig::default(),
            controller: ControllerConfig::default(),
            space: SpaceConfig::default(),
            device: DeviceProfile::raspberry_pi_4(),
            storage_limit_mb: Some(30.0),
            freeze_gamma: 0.5,
            use_freezing: true,
            dataset: DermatologyConfig {
                samples: 600,
                image_size: 12,
                ..DermatologyConfig::default()
            },
            variation_profile: Some(evaluator::paper_figure3_profile()),
            variation_batch: 8,
            cost: SearchCostConfig::default(),
            seed: 2022,
        }
    }
}

impl FahanaConfig {
    /// The paper's evaluation settings: 500 episodes, α = β = 1, γ = 0.5,
    /// Raspberry Pi target with `TC = 1500 ms` and `AC = 81 %`.
    pub fn paper_scale() -> Self {
        FahanaConfig {
            episodes: 500,
            ..FahanaConfig::default()
        }
    }
}

/// What happened in one search episode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeRecord {
    /// Episode index (0-based).
    pub episode: usize,
    /// Name assigned to the child architecture.
    pub name: String,
    /// Parameter count of the child.
    pub params: u64,
    /// Storage footprint (MB).
    pub storage_mb: f64,
    /// Estimated latency on the target device (ms).
    pub latency_ms: f64,
    /// Overall accuracy (0 when the child was not evaluated).
    pub accuracy: f64,
    /// Unfairness score (0 when the child was not evaluated).
    pub unfairness: f64,
    /// The reward of Eq. 1.
    pub reward: f64,
    /// Whether the child met all constraints (reward ≠ −1).
    pub valid: bool,
}

/// A discovered architecture together with its episode record.
#[derive(Debug, Clone)]
pub struct DiscoveredNetwork {
    /// The architecture itself.
    pub architecture: Architecture,
    /// Its metrics at discovery time.
    pub record: EpisodeRecord,
}

/// The result of a search run.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Every episode, in order.
    pub history: Vec<EpisodeRecord>,
    /// Highest-reward valid child (the architecture FaHaNa would deploy).
    pub best: Option<DiscoveredNetwork>,
    /// Highest-reward valid child under 4 M parameters (the FaHaNa-Small
    /// role in Table 3's G1).
    pub best_small: Option<DiscoveredNetwork>,
    /// Lowest-unfairness valid child (the FaHaNa-Fair role in G2).
    pub fairest: Option<DiscoveredNetwork>,
    /// Fraction of episodes with reward ≠ −1 (Table 2's "Valid").
    pub valid_ratio: f64,
    /// log10 of the search-space size (Table 2's "Space").
    pub space_log10_size: f64,
    /// Number of frozen backbone blocks.
    pub frozen_blocks: usize,
    /// Number of searchable tail slots.
    pub searchable_slots: usize,
    /// Modelled GPU-cluster search time in hours (Table 2's "Time").
    pub modelled_search_hours: f64,
    /// Same, formatted like the paper ("57H10M").
    pub modelled_search_time: String,
}

impl SearchOutcome {
    /// The reward/size Pareto frontier over valid children (Figure 5a).
    pub fn reward_size_frontier(&self) -> Vec<ParetoPoint> {
        let points: Vec<ParetoPoint> = self
            .history
            .iter()
            .filter(|r| r.valid)
            .map(|r| ParetoPoint::new(r.name.clone(), r.reward, r.params as f64 / 1.0e6))
            .collect();
        pareto_frontier(&points)
    }

    /// The accuracy/unfairness Pareto frontier over valid children
    /// (Figures 5b and 6).
    pub fn accuracy_fairness_frontier(&self) -> Vec<ParetoPoint> {
        let points: Vec<ParetoPoint> = self
            .history
            .iter()
            .filter(|r| r.valid)
            .map(|r| ParetoPoint::new(r.name.clone(), r.accuracy, r.unfairness))
            .collect();
        pareto_frontier(&points)
    }

    /// Running maximum of the reward (useful for convergence plots).
    pub fn best_reward_curve(&self) -> Vec<f64> {
        let mut best = f64::NEG_INFINITY;
        self.history
            .iter()
            .map(|r| {
                best = best.max(r.reward);
                best
            })
            .collect()
    }
}

/// The FaHaNa search engine with the default surrogate evaluator.
///
/// The engine is generic in spirit — [`FahanaSearch::run_with_evaluator`]
/// accepts any [`Evaluate`] implementation — while [`FahanaSearch::run`]
/// uses the calibrated surrogate, which is what all the benches use.
#[derive(Debug)]
pub struct FahanaSearch {
    config: FahanaConfig,
    template: BackboneTemplate,
    space: SearchSpace,
    controller: RnnController,
    latency_table: BlockLatencyTable,
    surrogate: SurrogateEvaluator,
    frozen_blocks: usize,
}

impl FahanaSearch {
    /// Builds the search: generates the dataset, runs the feature-variation
    /// analysis, freezes the backbone header (when enabled) and initialises
    /// the controller.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is inconsistent (e.g. zero
    /// episodes) or the backbone analysis fails.
    pub fn new(config: FahanaConfig) -> Result<Self> {
        if config.episodes == 0 {
            return Err(FahanaError::InvalidConfig(
                "a search needs at least one episode".into(),
            ));
        }
        let dataset = DermatologyGenerator::new(config.dataset.clone()).generate();
        let surrogate = SurrogateEvaluator::for_dataset(&dataset, config.seed);

        let backbone = zoo::mobilenet_v2(config.classes, config.input_size);
        let producer = BackboneProducer::new(backbone.clone(), config.freeze_gamma);
        let (template, frozen_blocks) = if config.use_freezing {
            let variations = match &config.variation_profile {
                Some(profile) => profile.clone(),
                None => {
                    feature_variation_by_block(
                        &backbone,
                        &dataset,
                        config.variation_batch,
                        config.seed,
                    )?
                    .per_block
                }
            };
            let decision = producer.decide_split(&variations);
            let template = producer.template(&decision);
            let frozen = template.frozen_block_count();
            (template, frozen)
        } else {
            (producer.full_search_template(), 0)
        };
        if template.searchable_slots() == 0 {
            return Err(FahanaError::InvalidConfig(
                "the freezing analysis froze the entire backbone; lower gamma".into(),
            ));
        }
        let space = SearchSpace::new(config.space.clone(), template.searchable_slots());
        let controller = RnnController::new(
            space.decision_cardinalities(),
            ControllerConfig {
                seed: config.seed ^ 0x5eed,
                ..config.controller
            },
        )?;
        let latency_table = BlockLatencyTable::new(config.device.clone());
        Ok(FahanaSearch {
            config,
            template,
            space,
            controller,
            latency_table,
            surrogate,
            frozen_blocks,
        })
    }

    /// The searchable slot count (after freezing).
    pub fn searchable_slots(&self) -> usize {
        self.template.searchable_slots()
    }

    /// The number of frozen backbone blocks.
    pub fn frozen_blocks(&self) -> usize {
        self.frozen_blocks
    }

    /// The search space being explored.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Runs the search with the calibrated surrogate evaluator.
    ///
    /// # Errors
    ///
    /// Propagates controller or evaluation failures.
    pub fn run(mut self) -> Result<SearchOutcome> {
        let mut surrogate = self.surrogate.clone();
        self.run_with_evaluator(&mut surrogate)
    }

    /// Runs the search with a caller-supplied evaluation back-end.
    ///
    /// # Errors
    ///
    /// Propagates controller or evaluation failures.
    pub fn run_with_evaluator<E: Evaluate>(&mut self, evaluator: &mut E) -> Result<SearchOutcome> {
        let mut history: Vec<EpisodeRecord> = Vec::with_capacity(self.config.episodes);
        let mut discovered: Vec<DiscoveredNetwork> = Vec::new();
        let mut cost = SearchCostModel::new(self.config.cost);
        let mut batch: Vec<(EpisodeSample, f64)> = Vec::new();

        for episode in 0..self.config.episodes {
            let sample = self.controller.sample_episode()?;
            let record = match self.evaluate_episode(episode, &sample, evaluator, &mut cost) {
                Ok((record, arch)) => {
                    if record.valid {
                        discovered.push(DiscoveredNetwork {
                            architecture: arch,
                            record: record.clone(),
                        });
                    }
                    record
                }
                Err(_) => {
                    // malformed child (should not happen): treat as invalid
                    cost.record_invalid();
                    EpisodeRecord {
                        episode,
                        name: format!("invalid-ep{episode}"),
                        params: 0,
                        storage_mb: 0.0,
                        latency_ms: f64::INFINITY,
                        accuracy: 0.0,
                        unfairness: 0.0,
                        reward: -1.0,
                        valid: false,
                    }
                }
            };
            batch.push((sample, record.reward));
            if batch.len() >= self.config.episodes_per_update {
                self.controller.update(&batch)?;
                batch.clear();
            }
            history.push(record);
        }
        if !batch.is_empty() {
            self.controller.update(&batch)?;
        }

        let valid = history.iter().filter(|r| r.valid).count();
        let valid_ratio = valid as f64 / history.len().max(1) as f64;
        let best = discovered
            .iter()
            .max_by(|a, b| a.record.reward.total_cmp(&b.record.reward))
            .cloned();
        let best_small = discovered
            .iter()
            .filter(|d| d.record.params < 4_000_000)
            .max_by(|a, b| a.record.reward.total_cmp(&b.record.reward))
            .cloned();
        let fairest = discovered
            .iter()
            .min_by(|a, b| a.record.unfairness.total_cmp(&b.record.unfairness))
            .cloned();
        Ok(SearchOutcome {
            history,
            best,
            best_small,
            fairest,
            valid_ratio,
            space_log10_size: self.space.log10_size(),
            frozen_blocks: self.frozen_blocks,
            searchable_slots: self.template.searchable_slots(),
            modelled_search_hours: cost.total_hours(),
            modelled_search_time: cost.format_hours_minutes(),
        })
    }

    fn evaluate_episode<E: Evaluate>(
        &mut self,
        episode: usize,
        sample: &EpisodeSample,
        evaluator: &mut E,
        cost: &mut SearchCostModel,
    ) -> Result<(EpisodeRecord, Architecture)> {
        let decisions = self.space.decisions_from_actions(&sample.actions)?;
        let child = self
            .template
            .instantiate(&self.space, &decisions, format!("fahana-ep{episode}"))?;
        let latency_ms = self.latency_table.estimate_ms(&child);
        let storage_mb = child.storage_mb();
        let meets_storage = self
            .config
            .storage_limit_mb
            .map(|limit| storage_mb <= limit)
            .unwrap_or(true);
        let meets_latency = latency_ms <= self.config.reward.timing_constraint_ms;

        // Hardware check first: children that violate the specification are
        // never trained (paper Figure 4 ➃).
        if !meets_latency || !meets_storage {
            cost.record_invalid();
            let record = EpisodeRecord {
                episode,
                name: child.name().to_string(),
                params: child.param_count(),
                storage_mb,
                latency_ms,
                accuracy: 0.0,
                unfairness: 0.0,
                reward: -1.0,
                valid: false,
            };
            return Ok((record, child));
        }

        let evaluation = evaluator.evaluate_with_frozen(&child, self.frozen_blocks)?;
        cost.record_valid(evaluation.trained_params);
        let reward = self
            .config
            .reward
            .compute(evaluation.accuracy(), evaluation.unfairness(), latency_ms);
        let record = EpisodeRecord {
            episode,
            name: child.name().to_string(),
            params: child.param_count(),
            storage_mb,
            latency_ms,
            accuracy: evaluation.accuracy(),
            unfairness: evaluation.unfairness(),
            reward: reward.value,
            valid: reward.valid,
        };
        Ok((record, child))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(episodes: usize, seed: u64) -> FahanaConfig {
        FahanaConfig {
            episodes,
            dataset: DermatologyConfig {
                samples: 200,
                image_size: 8,
                ..DermatologyConfig::default()
            },
            variation_batch: 4,
            seed,
            ..FahanaConfig::default()
        }
    }

    #[test]
    fn zero_episode_search_is_rejected() {
        assert!(FahanaSearch::new(FahanaConfig {
            episodes: 0,
            ..small_config(1, 0)
        })
        .is_err());
    }

    #[test]
    fn freezing_reduces_searchable_slots_and_space() {
        let fahana = FahanaSearch::new(small_config(5, 1)).unwrap();
        let monas = FahanaSearch::new(FahanaConfig {
            use_freezing: false,
            ..small_config(5, 1)
        })
        .unwrap();
        assert!(fahana.frozen_blocks() > 0, "gamma=0.5 should freeze a header");
        assert!(fahana.searchable_slots() < monas.searchable_slots());
        assert!(fahana.space().log10_size() < monas.space().log10_size());
        assert_eq!(monas.frozen_blocks(), 0);
    }

    #[test]
    fn search_produces_history_and_statistics() {
        let outcome = FahanaSearch::new(small_config(30, 2)).unwrap().run().unwrap();
        assert_eq!(outcome.history.len(), 30);
        assert!(outcome.valid_ratio >= 0.0 && outcome.valid_ratio <= 1.0);
        assert!(outcome.space_log10_size > 0.0);
        assert!(outcome.modelled_search_hours >= 0.0);
        assert!(!outcome.modelled_search_time.is_empty());
        // every valid record meets both constraints
        for record in outcome.history.iter().filter(|r| r.valid) {
            assert!(record.latency_ms <= 1500.0);
            assert!(record.accuracy >= 0.81);
            assert!(record.reward > -1.0);
        }
        // episode indices are sequential
        for (i, r) in outcome.history.iter().enumerate() {
            assert_eq!(r.episode, i);
        }
    }

    #[test]
    fn discovered_networks_satisfy_their_roles() {
        let outcome = FahanaSearch::new(small_config(40, 3)).unwrap().run().unwrap();
        if let Some(best) = &outcome.best {
            assert!(best.record.valid);
            // best is the max-reward valid record
            let max_reward = outcome
                .history
                .iter()
                .filter(|r| r.valid)
                .map(|r| r.reward)
                .fold(f64::NEG_INFINITY, f64::max);
            assert!((best.record.reward - max_reward).abs() < 1e-12);
        }
        if let Some(small) = &outcome.best_small {
            assert!(small.record.params < 4_000_000);
        }
        if let (Some(fairest), Some(best)) = (&outcome.fairest, &outcome.best) {
            assert!(fairest.record.unfairness <= best.record.unfairness + 1e-12);
        }
    }

    #[test]
    fn search_is_reproducible_for_a_seed() {
        let a = FahanaSearch::new(small_config(15, 5)).unwrap().run().unwrap();
        let b = FahanaSearch::new(small_config(15, 5)).unwrap().run().unwrap();
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn frontier_helpers_return_nondominated_points() {
        let outcome = FahanaSearch::new(small_config(30, 7)).unwrap().run().unwrap();
        let frontier = outcome.accuracy_fairness_frontier();
        for p in &frontier {
            for q in &frontier {
                assert!(!p.dominates(q) || p == q);
            }
        }
        let curve = outcome.best_reward_curve();
        assert_eq!(curve.len(), outcome.history.len());
        assert!(curve.windows(2).all(|w| w[1] >= w[0]));
    }
}
