//! The FaHaNa search loop (paper Figure 4).

use archspace::backbone::{BackboneProducer, BackboneTemplate};
use archspace::{zoo, Architecture, SearchSpace, SpaceConfig};
use dermsim::{Dataset, DermatologyConfig, DermatologyGenerator};
use edgehw::{DeviceProfile, SharedBlockLatencyTable};
use evaluator::{
    feature_variation_by_block, EvalRequest, Evaluate, EvaluateBatch, SearchCostConfig,
    SearchCostModel, SurrogateEvaluator,
};
use serde::{Deserialize, Serialize};

use crate::controller::{ControllerConfig, EpisodeSample, RnnController};
use crate::error::FahanaError;
use crate::pareto::{pareto_frontier, ParetoPoint};
use crate::reward::RewardConfig;
use crate::Result;

/// Configuration of a FaHaNa (or MONAS-style) search run.
#[derive(Debug, Clone)]
pub struct FahanaConfig {
    /// Number of reinforcement-learning episodes (the paper uses 500).
    pub episodes: usize,
    /// Episodes per controller update (the `m` of Eq. 2).
    pub episodes_per_update: usize,
    /// Number of disease classes.
    pub classes: usize,
    /// Input resolution used for latency/FLOP accounting.
    pub input_size: usize,
    /// Reward function settings (α, β, `AC`, `TC`).
    pub reward: RewardConfig,
    /// Controller hyperparameters.
    pub controller: ControllerConfig,
    /// Search-space choice lists.
    pub space: SpaceConfig,
    /// Target device for the latency constraint.
    pub device: DeviceProfile,
    /// Optional storage limit in MB.
    pub storage_limit_mb: Option<f64>,
    /// Freezing scale factor γ (the paper uses 0.5).
    pub freeze_gamma: f32,
    /// `true` runs FaHaNa (frozen header); `false` searches the whole
    /// backbone, which is how the MONAS baseline is configured.
    pub use_freezing: bool,
    /// Synthetic dermatology dataset settings.
    pub dataset: DermatologyConfig,
    /// Per-block feature-variation profile of the pretrained backbone used
    /// by the freezing analysis. Defaults to the paper's Figure 3 profile;
    /// set to `None` to re-measure it on a locally lowered backbone with
    /// [`evaluator::feature_variation_by_block`].
    pub variation_profile: Option<Vec<f32>>,
    /// Batch size (per group) for the feature-variation analysis when
    /// `variation_profile` is `None`.
    pub variation_batch: usize,
    /// Search-cost model constants (Table 2's time column).
    pub cost: SearchCostConfig,
    /// Master seed.
    pub seed: u64,
}

impl Default for FahanaConfig {
    fn default() -> Self {
        FahanaConfig {
            episodes: 100,
            episodes_per_update: 5,
            classes: 5,
            input_size: 224,
            reward: RewardConfig::default(),
            controller: ControllerConfig::default(),
            space: SpaceConfig::default(),
            device: DeviceProfile::raspberry_pi_4(),
            storage_limit_mb: Some(30.0),
            freeze_gamma: 0.5,
            use_freezing: true,
            dataset: DermatologyConfig {
                samples: 600,
                image_size: 12,
                ..DermatologyConfig::default()
            },
            variation_profile: Some(evaluator::paper_figure3_profile()),
            variation_batch: 8,
            cost: SearchCostConfig::default(),
            seed: 2022,
        }
    }
}

impl FahanaConfig {
    /// The paper's evaluation settings: 500 episodes, α = β = 1, γ = 0.5,
    /// Raspberry Pi target with `TC = 1500 ms` and `AC = 81 %`.
    pub fn paper_scale() -> Self {
        FahanaConfig {
            episodes: 500,
            ..FahanaConfig::default()
        }
    }
}

/// What happened in one search episode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeRecord {
    /// Episode index (0-based).
    pub episode: usize,
    /// Name assigned to the child architecture.
    pub name: String,
    /// Parameter count of the child.
    pub params: u64,
    /// Storage footprint (MB).
    pub storage_mb: f64,
    /// Estimated latency on the target device (ms).
    pub latency_ms: f64,
    /// Overall accuracy (0 when the child was not evaluated).
    pub accuracy: f64,
    /// Unfairness score (0 when the child was not evaluated).
    pub unfairness: f64,
    /// Parameters the evaluation actually trained — smaller than `params`
    /// when a frozen header was reused, 0 when the child was not evaluated.
    pub trained_params: u64,
    /// The reward of Eq. 1.
    pub reward: f64,
    /// Whether the child met all constraints (reward ≠ −1).
    pub valid: bool,
}

/// A discovered architecture together with its episode record.
#[derive(Debug, Clone)]
pub struct DiscoveredNetwork {
    /// The architecture itself.
    pub architecture: Architecture,
    /// Its metrics at discovery time.
    pub record: EpisodeRecord,
}

/// The result of a search run.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Every episode, in order.
    pub history: Vec<EpisodeRecord>,
    /// Highest-reward valid child (the architecture FaHaNa would deploy).
    pub best: Option<DiscoveredNetwork>,
    /// Highest-reward valid child under 4 M parameters (the FaHaNa-Small
    /// role in Table 3's G1).
    pub best_small: Option<DiscoveredNetwork>,
    /// Lowest-unfairness valid child (the FaHaNa-Fair role in G2).
    pub fairest: Option<DiscoveredNetwork>,
    /// Fraction of episodes with reward ≠ −1 (Table 2's "Valid").
    pub valid_ratio: f64,
    /// log10 of the search-space size (Table 2's "Space").
    pub space_log10_size: f64,
    /// Number of frozen backbone blocks.
    pub frozen_blocks: usize,
    /// Number of searchable tail slots.
    pub searchable_slots: usize,
    /// Modelled GPU-cluster search time in hours (Table 2's "Time").
    pub modelled_search_hours: f64,
    /// Same, formatted like the paper ("57H10M").
    pub modelled_search_time: String,
}

impl SearchOutcome {
    /// The reward/size Pareto frontier over valid children (Figure 5a).
    pub fn reward_size_frontier(&self) -> Vec<ParetoPoint> {
        let points: Vec<ParetoPoint> = self
            .history
            .iter()
            .filter(|r| r.valid)
            .map(|r| ParetoPoint::new(r.name.clone(), r.reward, r.params as f64 / 1.0e6))
            .collect();
        pareto_frontier(&points)
    }

    /// The accuracy/unfairness Pareto frontier over valid children
    /// (Figures 5b and 6).
    pub fn accuracy_fairness_frontier(&self) -> Vec<ParetoPoint> {
        let points: Vec<ParetoPoint> = self
            .history
            .iter()
            .filter(|r| r.valid)
            .map(|r| ParetoPoint::new(r.name.clone(), r.accuracy, r.unfairness))
            .collect();
        pareto_frontier(&points)
    }

    /// Running maximum of the reward (useful for convergence plots).
    pub fn best_reward_curve(&self) -> Vec<f64> {
        let mut best = f64::NEG_INFINITY;
        self.history
            .iter()
            .map(|r| {
                best = best.max(r.reward);
                best
            })
            .collect()
    }
}

/// The FaHaNa search engine with the default surrogate evaluator.
///
/// The engine is generic in spirit — [`FahanaSearch::run_with_evaluator`]
/// accepts any [`Evaluate`] implementation and
/// [`FahanaSearch::run_with_batch_evaluator`] any [`EvaluateBatch`] stage —
/// while [`FahanaSearch::run`] uses the calibrated surrogate, which is what
/// all the benches use.
///
/// Episodes are processed in controller-update-sized chunks: the chunk is
/// sampled sequentially (the controller RNN owns the only RNG stream), its
/// children pass the hardware gate, the survivors are handed to the
/// evaluation stage *as one batch*, and the policy-gradient update closes
/// the chunk. A batch stage that evaluates in parallel (see
/// `fahana-runtime`) therefore produces bit-identical outcomes to the
/// sequential stage.
#[derive(Debug)]
pub struct FahanaSearch {
    config: FahanaConfig,
    template: BackboneTemplate,
    space: SearchSpace,
    controller: RnnController,
    latency_table: SharedBlockLatencyTable,
    surrogate: SurrogateEvaluator,
    frozen_blocks: usize,
}

/// What the hardware gate decided about one sampled episode, before the
/// evaluation stage runs.
enum PreparedEpisode {
    /// The controller's actions failed to decode into a well-formed child
    /// (should not happen; kept as a defensive path).
    Malformed,
    /// The child violates the hardware specification and is never trained
    /// (paper Figure 4 ➃); the finished record is already known.
    Gated(EpisodeRecord),
    /// The child passed the gate and awaits evaluation.
    Pending { arch: Architecture, latency_ms: f64 },
}

impl FahanaSearch {
    /// Builds the search: generates the dataset, runs the feature-variation
    /// analysis, freezes the backbone header (when enabled) and initialises
    /// the controller.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is inconsistent (e.g. zero
    /// episodes) or the backbone analysis fails.
    pub fn new(config: FahanaConfig) -> Result<Self> {
        let dataset = DermatologyGenerator::new(config.dataset.clone()).generate();
        Self::with_dataset(config, &dataset)
    }

    /// Like [`FahanaSearch::new`], but reuses a pre-generated dataset
    /// instead of generating one from `config.dataset` — the campaign
    /// runtime shares one dataset across a whole scenario grid this way.
    /// The caller is responsible for passing a dataset consistent with
    /// `config.dataset`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FahanaSearch::new`].
    pub fn with_dataset(config: FahanaConfig, dataset: &Dataset) -> Result<Self> {
        if config.episodes == 0 {
            return Err(FahanaError::InvalidConfig(
                "a search needs at least one episode".into(),
            ));
        }
        let surrogate = SurrogateEvaluator::for_dataset(dataset, config.seed);

        let backbone = zoo::mobilenet_v2(config.classes, config.input_size);
        let producer = BackboneProducer::new(backbone.clone(), config.freeze_gamma);
        let (template, frozen_blocks) = if config.use_freezing {
            let variations = match &config.variation_profile {
                Some(profile) => profile.clone(),
                None => {
                    feature_variation_by_block(
                        &backbone,
                        dataset,
                        config.variation_batch,
                        config.seed,
                    )?
                    .per_block
                }
            };
            let decision = producer.decide_split(&variations);
            let template = producer.template(&decision);
            let frozen = template.frozen_block_count();
            (template, frozen)
        } else {
            (producer.full_search_template(), 0)
        };
        if template.searchable_slots() == 0 {
            return Err(FahanaError::InvalidConfig(
                "the freezing analysis froze the entire backbone; lower gamma".into(),
            ));
        }
        let space = SearchSpace::new(config.space.clone(), template.searchable_slots());
        let controller = RnnController::new(
            space.decision_cardinalities(),
            ControllerConfig {
                seed: config.seed ^ 0x5eed,
                ..config.controller
            },
        )?;
        let latency_table = SharedBlockLatencyTable::new(config.device.clone());
        Ok(FahanaSearch {
            config,
            template,
            space,
            controller,
            latency_table,
            surrogate,
            frozen_blocks,
        })
    }

    /// The searchable slot count (after freezing).
    pub fn searchable_slots(&self) -> usize {
        self.template.searchable_slots()
    }

    /// The number of frozen backbone blocks.
    pub fn frozen_blocks(&self) -> usize {
        self.frozen_blocks
    }

    /// The search space being explored.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// The calibrated surrogate evaluator this search would run with by
    /// default (derived from the generated dataset and the master seed).
    pub fn surrogate(&self) -> &SurrogateEvaluator {
        &self.surrogate
    }

    /// The per-block latency table used by the hardware gate.
    pub fn latency_table(&self) -> &SharedBlockLatencyTable {
        &self.latency_table
    }

    /// Replaces the latency table with a shared one, so concurrent searches
    /// targeting the same device pool their offline block profiles.
    ///
    /// # Errors
    ///
    /// Returns an error if `table` was built for a different device profile
    /// than this search's configuration.
    pub fn set_latency_table(&mut self, table: SharedBlockLatencyTable) -> Result<()> {
        if *table.device() != self.config.device {
            return Err(FahanaError::InvalidConfig(format!(
                "latency table profiles {} but the search targets {}",
                table.device().kind,
                self.config.device.kind
            )));
        }
        self.latency_table = table;
        Ok(())
    }

    /// Runs the search with the calibrated surrogate evaluator.
    ///
    /// # Errors
    ///
    /// Propagates controller or evaluation failures.
    pub fn run(mut self) -> Result<SearchOutcome> {
        let mut surrogate = self.surrogate.clone();
        self.run_with_evaluator(&mut surrogate)
    }

    /// Runs the search with a caller-supplied evaluation back-end.
    ///
    /// # Errors
    ///
    /// Propagates controller failures. A failure to evaluate an individual
    /// child does not abort the run — that episode is recorded as invalid
    /// with reward −1, mirroring how constraint-violating children are
    /// treated.
    pub fn run_with_evaluator<E: Evaluate>(&mut self, evaluator: &mut E) -> Result<SearchOutcome> {
        self.run_with_batch_evaluator(evaluator)
    }

    /// Runs the search with a caller-supplied *batch* evaluation stage.
    ///
    /// Each controller-update chunk is sampled sequentially, gated against
    /// the hardware specification, and the surviving children are handed to
    /// `evaluator` as one batch. The stage may evaluate them in any order
    /// (e.g. on a thread pool) as long as it returns results in request
    /// order; the search outcome is identical either way.
    ///
    /// # Errors
    ///
    /// Propagates controller failures, and rejects a batch stage that
    /// returns the wrong number of results. A per-request `Err` from the
    /// stage does not abort the run — that episode is recorded as invalid
    /// with reward −1, mirroring how constraint-violating children are
    /// treated.
    pub fn run_with_batch_evaluator<B: EvaluateBatch + ?Sized>(
        &mut self,
        evaluator: &mut B,
    ) -> Result<SearchOutcome> {
        let episodes = self.config.episodes;
        let chunk_size = self.config.episodes_per_update.max(1);
        let mut history: Vec<EpisodeRecord> = Vec::with_capacity(episodes);
        let mut discovered: Vec<DiscoveredNetwork> = Vec::new();
        let mut cost = SearchCostModel::new(self.config.cost);

        let mut episode = 0;
        while episode < episodes {
            let chunk = chunk_size.min(episodes - episode);

            // ➀ sample the chunk (sequential: the controller RNN owns the
            // only RNG stream, which defines the search trajectory)
            let mut samples: Vec<EpisodeSample> = Vec::with_capacity(chunk);
            for _ in 0..chunk {
                samples.push(self.controller.sample_episode()?);
            }

            // ➁ instantiate children and apply the hardware gate
            let prepared: Vec<PreparedEpisode> = samples
                .iter()
                .enumerate()
                .map(|(offset, sample)| self.prepare_episode(episode + offset, sample))
                .collect();

            // ➂ evaluate the survivors as one batch
            let requests: Vec<EvalRequest> = prepared
                .iter()
                .filter_map(|p| match p {
                    PreparedEpisode::Pending { arch, .. } => {
                        Some(EvalRequest::new(arch.clone(), self.frozen_blocks))
                    }
                    _ => None,
                })
                .collect();
            let evaluations = evaluator.evaluate_batch(&requests);
            if evaluations.len() != requests.len() {
                return Err(FahanaError::InvalidConfig(format!(
                    "batch evaluator returned {} results for {} requests",
                    evaluations.len(),
                    requests.len()
                )));
            }

            // ➃ assemble records in episode order and close the chunk with
            // the policy-gradient update
            let mut evaluations = evaluations.into_iter();
            let mut update_batch: Vec<(EpisodeSample, f64)> = Vec::with_capacity(chunk);
            for (offset, (sample, prep)) in samples.into_iter().zip(prepared).enumerate() {
                let index = episode + offset;
                let record = match prep {
                    PreparedEpisode::Malformed => {
                        cost.record_invalid();
                        Self::invalid_record(index)
                    }
                    PreparedEpisode::Gated(record) => {
                        cost.record_invalid();
                        record
                    }
                    PreparedEpisode::Pending { arch, latency_ms } => {
                        let evaluation = evaluations
                            .next()
                            .expect("one evaluation per pending episode");
                        match evaluation {
                            Ok(evaluation) => {
                                cost.record_valid(evaluation.trained_params);
                                let reward = self.config.reward.compute(
                                    evaluation.accuracy(),
                                    evaluation.unfairness(),
                                    latency_ms,
                                );
                                let record = EpisodeRecord {
                                    episode: index,
                                    name: arch.name().to_string(),
                                    params: arch.param_count(),
                                    storage_mb: arch.storage_mb(),
                                    latency_ms,
                                    accuracy: evaluation.accuracy(),
                                    unfairness: evaluation.unfairness(),
                                    trained_params: evaluation.trained_params,
                                    reward: reward.value,
                                    valid: reward.valid,
                                };
                                if record.valid {
                                    discovered.push(DiscoveredNetwork {
                                        architecture: arch,
                                        record: record.clone(),
                                    });
                                }
                                record
                            }
                            Err(_) => {
                                // evaluation failed (should not happen):
                                // treat as invalid
                                cost.record_invalid();
                                Self::invalid_record(index)
                            }
                        }
                    }
                };
                update_batch.push((sample, record.reward));
                history.push(record);
            }
            self.controller.update(&update_batch)?;
            episode += chunk;
        }

        let valid = history.iter().filter(|r| r.valid).count();
        let valid_ratio = valid as f64 / history.len().max(1) as f64;
        let best = discovered
            .iter()
            .max_by(|a, b| a.record.reward.total_cmp(&b.record.reward))
            .cloned();
        let best_small = discovered
            .iter()
            .filter(|d| d.record.params < 4_000_000)
            .max_by(|a, b| a.record.reward.total_cmp(&b.record.reward))
            .cloned();
        let fairest = discovered
            .iter()
            .min_by(|a, b| a.record.unfairness.total_cmp(&b.record.unfairness))
            .cloned();
        Ok(SearchOutcome {
            history,
            best,
            best_small,
            fairest,
            valid_ratio,
            space_log10_size: self.space.log10_size(),
            frozen_blocks: self.frozen_blocks,
            searchable_slots: self.template.searchable_slots(),
            modelled_search_hours: cost.total_hours(),
            modelled_search_time: cost.format_hours_minutes(),
        })
    }

    /// Decodes one sampled episode into a child and applies the hardware
    /// gate (paper Figure 4 ➃: children that violate the specification are
    /// never trained).
    fn prepare_episode(&self, episode: usize, sample: &EpisodeSample) -> PreparedEpisode {
        let Ok(decisions) = self.space.decisions_from_actions(&sample.actions) else {
            return PreparedEpisode::Malformed;
        };
        let Ok(child) =
            self.template
                .instantiate(&self.space, &decisions, format!("fahana-ep{episode}"))
        else {
            return PreparedEpisode::Malformed;
        };
        let latency_ms = self.latency_table.estimate_ms(&child);
        let storage_mb = child.storage_mb();
        let meets_storage = self
            .config
            .storage_limit_mb
            .map(|limit| storage_mb <= limit)
            .unwrap_or(true);
        let meets_latency = latency_ms <= self.config.reward.timing_constraint_ms;
        if !meets_latency || !meets_storage {
            return PreparedEpisode::Gated(EpisodeRecord {
                episode,
                name: child.name().to_string(),
                params: child.param_count(),
                storage_mb,
                latency_ms,
                accuracy: 0.0,
                unfairness: 0.0,
                trained_params: 0,
                reward: -1.0,
                valid: false,
            });
        }
        PreparedEpisode::Pending {
            arch: child,
            latency_ms,
        }
    }

    /// The placeholder record for an episode whose child could not be built
    /// or evaluated.
    fn invalid_record(episode: usize) -> EpisodeRecord {
        EpisodeRecord {
            episode,
            name: format!("invalid-ep{episode}"),
            params: 0,
            storage_mb: 0.0,
            latency_ms: f64::INFINITY,
            accuracy: 0.0,
            unfairness: 0.0,
            trained_params: 0,
            reward: -1.0,
            valid: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(episodes: usize, seed: u64) -> FahanaConfig {
        FahanaConfig {
            episodes,
            dataset: DermatologyConfig {
                samples: 200,
                image_size: 8,
                ..DermatologyConfig::default()
            },
            variation_batch: 4,
            seed,
            ..FahanaConfig::default()
        }
    }

    #[test]
    fn zero_episode_search_is_rejected() {
        assert!(FahanaSearch::new(FahanaConfig {
            episodes: 0,
            ..small_config(1, 0)
        })
        .is_err());
    }

    #[test]
    fn freezing_reduces_searchable_slots_and_space() {
        let fahana = FahanaSearch::new(small_config(5, 1)).unwrap();
        let monas = FahanaSearch::new(FahanaConfig {
            use_freezing: false,
            ..small_config(5, 1)
        })
        .unwrap();
        assert!(
            fahana.frozen_blocks() > 0,
            "gamma=0.5 should freeze a header"
        );
        assert!(fahana.searchable_slots() < monas.searchable_slots());
        assert!(fahana.space().log10_size() < monas.space().log10_size());
        assert_eq!(monas.frozen_blocks(), 0);
    }

    #[test]
    fn search_produces_history_and_statistics() {
        let outcome = FahanaSearch::new(small_config(30, 2))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(outcome.history.len(), 30);
        assert!(outcome.valid_ratio >= 0.0 && outcome.valid_ratio <= 1.0);
        assert!(outcome.space_log10_size > 0.0);
        assert!(outcome.modelled_search_hours >= 0.0);
        assert!(!outcome.modelled_search_time.is_empty());
        // every valid record meets both constraints
        for record in outcome.history.iter().filter(|r| r.valid) {
            assert!(record.latency_ms <= 1500.0);
            assert!(record.accuracy >= 0.81);
            assert!(record.reward > -1.0);
        }
        // episode indices are sequential
        for (i, r) in outcome.history.iter().enumerate() {
            assert_eq!(r.episode, i);
        }
    }

    #[test]
    fn discovered_networks_satisfy_their_roles() {
        let outcome = FahanaSearch::new(small_config(40, 3))
            .unwrap()
            .run()
            .unwrap();
        if let Some(best) = &outcome.best {
            assert!(best.record.valid);
            // best is the max-reward valid record
            let max_reward = outcome
                .history
                .iter()
                .filter(|r| r.valid)
                .map(|r| r.reward)
                .fold(f64::NEG_INFINITY, f64::max);
            assert!((best.record.reward - max_reward).abs() < 1e-12);
        }
        if let Some(small) = &outcome.best_small {
            assert!(small.record.params < 4_000_000);
        }
        if let (Some(fairest), Some(best)) = (&outcome.fairest, &outcome.best) {
            assert!(fairest.record.unfairness <= best.record.unfairness + 1e-12);
        }
    }

    #[test]
    fn search_is_reproducible_for_a_seed() {
        let a = FahanaSearch::new(small_config(15, 5))
            .unwrap()
            .run()
            .unwrap();
        let b = FahanaSearch::new(small_config(15, 5))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn batch_stage_evaluation_order_does_not_change_the_outcome() {
        // a batch stage that walks its requests in reverse (as a stand-in
        // for arbitrary parallel scheduling) but returns results in request
        // order must reproduce the streaming outcome bit for bit
        struct ReversingStage(SurrogateEvaluator);
        impl EvaluateBatch for ReversingStage {
            fn evaluate_batch(
                &mut self,
                requests: &[EvalRequest],
            ) -> Vec<evaluator::Result<evaluator::FairnessEvaluation>> {
                let mut results: Vec<_> = (0..requests.len()).map(|_| None).collect();
                for (index, request) in requests.iter().enumerate().rev() {
                    results[index] = Some(
                        self.0
                            .evaluate_with_frozen(&request.arch, request.frozen_blocks),
                    );
                }
                results.into_iter().map(Option::unwrap).collect()
            }
        }

        let streamed = FahanaSearch::new(small_config(20, 9))
            .unwrap()
            .run()
            .unwrap();
        let mut search = FahanaSearch::new(small_config(20, 9)).unwrap();
        let mut stage = ReversingStage(search.surrogate().clone());
        let batched = search.run_with_batch_evaluator(&mut stage).unwrap();
        assert_eq!(streamed.history, batched.history);
        assert_eq!(streamed.valid_ratio, batched.valid_ratio);
    }

    #[test]
    fn shared_latency_table_injection_preserves_outcomes_and_pools_profiles() {
        let baseline = FahanaSearch::new(small_config(10, 6))
            .unwrap()
            .run()
            .unwrap();

        let shared = SharedBlockLatencyTable::new(small_config(10, 6).device);
        let mut first = FahanaSearch::new(small_config(10, 6)).unwrap();
        first.set_latency_table(shared.clone()).unwrap();
        let first = first.run().unwrap();
        let misses_after_first = shared.hit_miss().1;

        let mut second = FahanaSearch::new(small_config(10, 6)).unwrap();
        second.set_latency_table(shared.clone()).unwrap();
        let second = second.run().unwrap();

        assert_eq!(baseline.history, first.history);
        assert_eq!(baseline.history, second.history);
        // the second identical search re-visits only profiled blocks
        assert_eq!(shared.hit_miss().1, misses_after_first);
        assert!(shared.hit_miss().0 > 0);
    }

    #[test]
    fn latency_table_for_wrong_device_is_rejected() {
        let mut search = FahanaSearch::new(small_config(5, 1)).unwrap();
        let wrong = SharedBlockLatencyTable::new(DeviceProfile::odroid_xu4());
        assert!(search.set_latency_table(wrong).is_err());
        let right = SharedBlockLatencyTable::new(DeviceProfile::raspberry_pi_4());
        assert!(search.set_latency_table(right).is_ok());
    }

    #[test]
    fn search_engine_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<FahanaSearch>();
        assert_send::<SearchOutcome>();
        assert_send::<FahanaConfig>();
    }

    #[test]
    fn frontier_helpers_return_nondominated_points() {
        let outcome = FahanaSearch::new(small_config(30, 7))
            .unwrap()
            .run()
            .unwrap();
        let frontier = outcome.accuracy_fairness_frontier();
        for p in &frontier {
            for q in &frontier {
                assert!(!p.dominates(q) || p == q);
            }
        }
        let curve = outcome.best_reward_curve();
        assert_eq!(curve.len(), outcome.history.len());
        assert!(curve.windows(2).all(|w| w[1] >= w[0]));
    }
}
